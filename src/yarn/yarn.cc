#include "src/yarn/yarn.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <type_traits>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/tracer.h"
#include "src/yarn/rm_scheduler.h"

namespace hiway {

const char* ToString(ContainerLossReason reason) {
  switch (reason) {
    case ContainerLossReason::kNodeLost: return "node-lost";
    case ContainerLossReason::kKilled: return "killed";
    case ContainerLossReason::kPreempted: return "preempted";
    case ContainerLossReason::kDrained: return "drained";
  }
  return "unknown";
}

namespace {

/// Dominant share of `u` against live cluster capacity.
double Dominant(const ResourceUsage& u, int total_vcores,
                double total_memory_mb) {
  double cores = total_vcores > 0
                     ? static_cast<double>(u.vcores) / total_vcores
                     : 0.0;
  double mem = total_memory_mb > 0.0 ? u.memory_mb / total_memory_mb : 0.0;
  return std::max(cores, mem);
}

}  // namespace

ResourceManager::ResourceManager(Cluster* cluster, YarnOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  nodes_.resize(static_cast<size_t>(cluster_->num_nodes()));
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    nodes_[static_cast<size_t>(n)].free_vcores = cluster_->node(n).cores;
    nodes_[static_cast<size_t>(n)].free_memory_mb =
        cluster_->node(n).memory_mb;
    total_vcores_ += cluster_->node(n).cores;
    total_memory_mb_ += cluster_->node(n).memory_mb;
    IndexNode(n);
  }
  queue_configs_["default"] = RmQueueConfig{};
  auto scheduler = MakeRmScheduler(options_.scheduler);
  HIWAY_CHECK(scheduler.ok());
  scheduler_ = std::move(*scheduler);
  scheduler_name_ = scheduler_->name();
}

ResourceManager::~ResourceManager() = default;

void ResourceManager::SetRmScheduler(std::unique_ptr<RmScheduler> scheduler) {
  HIWAY_CHECK(scheduler != nullptr);
  scheduler_name_ = scheduler->name();
  scheduler_ = std::move(scheduler);
}

void ResourceManager::ConfigureQueue(const RmQueueConfig& config) {
  queue_configs_[config.name] = config;
  TenantStats& qs = queue_stats_[config.name];
  qs.queue = config.name;
}

const RmQueueConfig* ResourceManager::queue_config(
    const std::string& name) const {
  auto it = queue_configs_.find(name);
  return it == queue_configs_.end() ? nullptr : &it->second;
}

std::vector<std::string> ResourceManager::ConfiguredQueues() const {
  std::vector<std::string> names;
  names.reserve(queue_configs_.size());
  for (const auto& [name, config] : queue_configs_) names.push_back(name);
  return names;
}

// ---- Placement index ----------------------------------------------------

void ResourceManager::IndexNode(NodeId node) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  if (ns.indexed || !ns.alive || ns.draining) return;
  // A node with nothing free can only satisfy a zero-size request, and
  // those take the full-fleet scan path.
  if (ns.free_vcores <= 0 && ns.free_memory_mb <= 0.0) return;
  ns.indexed = true;
  open_nodes_.insert(node);
  open_vcores_.insert(ns.free_vcores);
  open_memory_.insert(ns.free_memory_mb);
}

void ResourceManager::UnindexNode(NodeId node) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  if (!ns.indexed) return;
  ns.indexed = false;
  open_nodes_.erase(node);
  open_vcores_.erase(open_vcores_.find(ns.free_vcores));
  open_memory_.erase(open_memory_.find(ns.free_memory_mb));
}

// ---- Tenant accounting --------------------------------------------------

TenantStats& ResourceManager::StatsOf(ApplicationId app) {
  TenantStats& stats = app_stats_[app];
  if (stats.queue.empty()) stats.queue = "default";
  return stats;
}

TenantStats& ResourceManager::QueueStatsOf(ApplicationId app) {
  TenantStats& qs = queue_stats_[StatsOf(app).queue];
  if (qs.queue.empty()) qs.queue = StatsOf(app).queue;
  return qs;
}

void ResourceManager::AddPending(ApplicationId app,
                                 const ContainerRequest& r) {
  for (TenantStats* s : {&StatsOf(app), &QueueStatsOf(app)}) {
    s->pending.vcores += r.vcores;
    s->pending.memory_mb += r.memory_mb;
    ++s->pending_requests;
  }
  FairnessTouch(app);
}

void ResourceManager::RemovePending(ApplicationId app,
                                    const ContainerRequest& r) {
  for (TenantStats* s : {&StatsOf(app), &QueueStatsOf(app)}) {
    s->pending.vcores -= r.vcores;
    s->pending.memory_mb -= r.memory_mb;
    --s->pending_requests;
  }
  FairnessTouch(app);
}

Container* ResourceManager::AllocateOn(ApplicationId app, NodeId node,
                                       int vcores, double memory_mb) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  HIWAY_CHECK(ns.alive);
  HIWAY_CHECK(ns.free_vcores >= vcores && ns.free_memory_mb >= memory_mb);
  UnindexNode(node);
  ns.free_vcores -= vcores;
  ns.free_memory_mb -= memory_mb;
  IndexNode(node);
  Container c;
  c.id = next_container_++;
  c.app = app;
  c.node = node;
  c.vcores = vcores;
  c.memory_mb = memory_mb;
  c.allocated_at = cluster_->engine()->Now();
  auto [it, inserted] = containers_.emplace(c.id, c);
  HIWAY_CHECK(inserted);
  ++counters_.allocations;
  for (TenantStats* s : {&StatsOf(app), &QueueStatsOf(app)}) {
    ++s->counters.allocations;
    s->usage.vcores += vcores;
    s->usage.memory_mb += memory_mb;
  }
  FairnessTouch(app);
  return &it->second;
}

Result<ApplicationId> ResourceManager::RegisterApplication(
    const std::string& name, AmCallbacks* callbacks, int am_vcores,
    double am_memory_mb, NodeId am_node, const std::string& queue) {
  if (queue_configs_.find(queue) == queue_configs_.end()) {
    return Status::InvalidArgument("unknown RM queue '" + queue +
                                   "'; ConfigureQueue it first");
  }
  NodeId target = am_node;
  if (target == kInvalidNode) {
    if (am_vcores > 0 || am_memory_mb > 0.0) {
      // Open nodes are alive and not draining by construction, and any
      // node that fits a positive-size AM has free capacity, so the
      // ascending open set visits exactly the fleet scan's hits.
      for (NodeId n : open_nodes_) {
        const NodeState& ns = nodes_[static_cast<size_t>(n)];
        if (ns.free_vcores >= am_vcores && ns.free_memory_mb >= am_memory_mb) {
          target = n;
          break;
        }
      }
    } else {
      for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
        const NodeState& ns = nodes_[static_cast<size_t>(n)];
        if (ns.alive && !ns.draining && ns.free_vcores >= am_vcores &&
            ns.free_memory_mb >= am_memory_mb) {
          target = n;
          break;
        }
      }
    }
    if (target == kInvalidNode) {
      return Status::ResourceExhausted(
          "no node has capacity for the AM container of " + name);
    }
  } else {
    const NodeState& ns = nodes_[static_cast<size_t>(target)];
    if (!ns.alive || ns.draining || ns.free_vcores < am_vcores ||
        ns.free_memory_mb < am_memory_mb) {
      return Status::ResourceExhausted("requested AM node lacks capacity");
    }
  }
  AccrueFairness();
  ApplicationId app = next_app_++;
  app_stats_[app].queue = queue;
  Container* am = AllocateOn(app, target, am_vcores, am_memory_mb);
  am->is_am = true;
  if (tracer_ != nullptr) {
    tracer_->Begin(SpanCategory::kContainer, "container", app, am->id,
                   /*task=*/-1, target);
  }
  AppState state;
  state.name = name;
  state.callbacks = callbacks;
  state.am_container = am->id;
  apps_.emplace(app, std::move(state));
  // The app entered the registry after its AM allocation; fold its cell
  // into the fairness aggregates now.
  FairnessTouch(app);
  return app;
}

void ResourceManager::RegisterAppFootprint(ApplicationId app, int64_t bytes) {
  if (apps_.find(app) == apps_.end()) return;
  auto [it, inserted] = app_footprint_.emplace(app, 0);
  committed_footprint_bytes_ += bytes - it->second;
  it->second = bytes;
}

void ResourceManager::DropAppFootprint(ApplicationId app) {
  auto it = app_footprint_.find(app);
  if (it == app_footprint_.end()) return;
  committed_footprint_bytes_ -= it->second;
  app_footprint_.erase(it);
}

void ResourceManager::UnregisterApplication(ApplicationId app) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return;
  AccrueFairness();
  DropAppFootprint(app);
  it->second.active = false;
  FairnessDrop(app);
  // Drop pending requests (this application's only).
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const PendingRequest& p) {
                                if (p.app != app) return false;
                                RemovePending(app, p.request);
                                return true;
                              }),
               queue_.end());
  if (it->second.am_container != kInvalidContainer) {
    ReleaseContainer(it->second.am_container);
  }
  apps_.erase(app);
}

void ResourceManager::SubmitRequest(ApplicationId app,
                                    const ContainerRequest& request) {
  HIWAY_CHECK(apps_.find(app) != apps_.end());
  AccrueFairness();
  ++counters_.requests;
  ++StatsOf(app).counters.requests;
  ++QueueStatsOf(app).counters.requests;
  AddPending(app, request);
  queue_.push_back(
      PendingRequest{app, request, cluster_->engine()->Now()});
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kContainer, "container_requested", app,
                     /*container=*/-1, /*task=*/request.cookie,
                     request.preferred_node);
  }
  ScheduleAllocationPass();
}

int ResourceManager::CancelRequests(ApplicationId app, int64_t cookie) {
  AccrueFairness();
  int removed = 0;
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const PendingRequest& p) {
                                if (p.app == app &&
                                    p.request.cookie == cookie) {
                                  RemovePending(app, p.request);
                                  ++removed;
                                  return true;
                                }
                                return false;
                              }),
               queue_.end());
  return removed;
}

void ResourceManager::ReleaseContainer(ContainerId id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return;
  AccrueFairness();
  const Container& c = it->second;
  NodeState& ns = nodes_[static_cast<size_t>(c.node)];
  if (ns.alive) {
    UnindexNode(c.node);
    ns.free_vcores += c.vcores;
    ns.free_memory_mb += c.memory_mb;
    IndexNode(c.node);
  }
  ++counters_.releases;
  double work = cluster_->engine()->Now() - c.allocated_at;
  if (tracer_ != nullptr) {
    tracer_->End(SpanCategory::kContainer, "container", c.app, c.id,
                 /*task=*/-1, c.node, work);
  }
  if (!c.is_am) counters_.container_work_s += work;
  for (TenantStats* s : {&StatsOf(c.app), &QueueStatsOf(c.app)}) {
    ++s->counters.releases;
    if (!c.is_am) s->counters.container_work_s += work;
    s->usage.vcores -= c.vcores;
    s->usage.memory_mb -= c.memory_mb;
  }
  FairnessTouch(c.app);
  containers_.erase(id);
  ScheduleAllocationPass();
}

void ResourceManager::DropContainer(const Container& c,
                                    ContainerLossReason reason, bool notify) {
  auto it = containers_.find(c.id);
  if (it == containers_.end()) return;
  NodeState& ns = nodes_[static_cast<size_t>(c.node)];
  if (ns.alive) {
    UnindexNode(c.node);
    ns.free_vcores += c.vcores;
    ns.free_memory_mb += c.memory_mb;
    IndexNode(c.node);
  }
  bool reclaim = !notify;  // losses of a dead master count as reclaims
  bool preempted = !reclaim && reason == ContainerLossReason::kPreempted;
  bool drained = !reclaim && reason == ContainerLossReason::kDrained;
  // Lifetime of the dying container: consumed work always, and — for
  // preemption/drain victims — wasted work the owning AM must redo.
  double work = cluster_->engine()->Now() - c.allocated_at;
  if (tracer_ != nullptr) {
    tracer_->End(SpanCategory::kContainer, "container", c.app, c.id,
                 /*task=*/-1, c.node, work);
    if (preempted) {
      tracer_->Instant(SpanCategory::kPreemption, "preempt_kill", c.app, c.id,
                       /*task=*/-1, c.node, work, c.priority);
    } else if (drained) {
      tracer_->Instant(SpanCategory::kMembership, "drain_vacate", c.app, c.id,
                       /*task=*/-1, c.node, work);
    } else {
      tracer_->Instant(SpanCategory::kFailover, "container_lost", c.app, c.id,
                       /*task=*/-1, c.node, work,
                       static_cast<int64_t>(reason));
    }
  }
  for (RmCounters* k : {&counters_, &StatsOf(c.app).counters,
                        &QueueStatsOf(c.app).counters}) {
    if (reclaim) {
      ++k->reclaimed_containers;
    } else if (preempted) {
      ++k->preempted_containers;
      if (!c.is_am) k->preempted_work_s += work;
    } else if (drained) {
      ++k->drained_containers;
      if (!c.is_am) k->drained_work_s += work;
    } else {
      ++k->lost_containers;
      if (!c.is_am) k->lost_work_s += work;
    }
    if (!c.is_am) k->container_work_s += work;
  }
  for (TenantStats* s : {&StatsOf(c.app), &QueueStatsOf(c.app)}) {
    s->usage.vcores -= c.vcores;
    s->usage.memory_mb -= c.memory_mb;
  }
  FairnessTouch(c.app);
  containers_.erase(c.id);
  if (!notify) return;
  auto app_it = apps_.find(c.app);
  if (app_it != apps_.end() && app_it->second.callbacks != nullptr) {
    // Synchronous delivery: by the time KillNode/KillContainer returns,
    // every surviving AM has seen its losses and re-queued work.
    app_it->second.callbacks->OnContainerLost(c, reason);
  }
}

void ResourceManager::KillNode(NodeId node) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  if (!ns.alive) return;
  AccrueFairness();
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kFailover, "node_lost", /*app=*/-1,
                     /*container=*/-1, /*task=*/-1, node);
  }
  UnindexNode(node);
  ns.alive = false;
  ns.draining = false;
  ns.free_vcores = 0;
  ns.free_memory_mb = 0.0;
  total_vcores_ -= cluster_->node(node).cores;
  total_memory_mb_ -= cluster_->node(node).memory_mb;
  // Every demand-satisfaction share moved with the capacity.
  FairnessRebuild();
  // Applications whose AM container lived on the node die with it
  // (ascending id, matching the registry's former sorted iteration).
  std::vector<ApplicationId> dead_apps;
  for (const auto& [app, state] : apps_) {
    auto cit = containers_.find(state.am_container);
    if (cit != containers_.end() && cit->second.node == node) {
      dead_apps.push_back(app);
    }
  }
  std::sort(dead_apps.begin(), dead_apps.end());
  for (ApplicationId app : dead_apps) {
    FailApplication(app, StrFormat("AM node %d lost", node));
  }
  // Survivors' containers on the node are reported as node losses, in
  // ascending container id.
  std::vector<Container> lost;
  for (const auto& [id, c] : containers_) {
    if (c.node == node) lost.push_back(c);
  }
  std::sort(lost.begin(), lost.end(),
            [](const Container& a, const Container& b) { return a.id < b.id; });
  for (const Container& c : lost) {
    DropContainer(c, ContainerLossReason::kNodeLost, /*notify=*/true);
  }
  ScheduleAllocationPass();
}

void ResourceManager::AddNode(NodeId node) {
  HIWAY_CHECK(node == static_cast<NodeId>(nodes_.size()));
  HIWAY_CHECK(node < cluster_->num_nodes());
  AccrueFairness();
  NodeState ns;
  ns.free_vcores = cluster_->node(node).cores;
  ns.free_memory_mb = cluster_->node(node).memory_mb;
  nodes_.push_back(ns);
  IndexNode(node);
  total_vcores_ += cluster_->node(node).cores;
  total_memory_mb_ += cluster_->node(node).memory_mb;
  FairnessRebuild();
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kMembership, "node_joined", /*app=*/-1,
                     /*container=*/-1, /*task=*/-1, node,
                     static_cast<double>(ns.free_vcores));
  }
  // The new capacity is matched against the backlog like any release.
  ScheduleAllocationPass();
}

void ResourceManager::BeginDrain(NodeId node, double deadline) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  if (!ns.alive || ns.draining) return;
  AccrueFairness();
  UnindexNode(node);
  ns.draining = true;
  ns.drain_deadline = deadline;
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kMembership, "node_draining", /*app=*/-1,
                     /*container=*/-1, /*task=*/-1, node, deadline);
  }
  // Tell every live master so it can triage its containers on the node.
  // DropContainer (the reaction AMs typically take) never mutates apps_,
  // so iterating a snapshot of the registry is safe. Ascending app id.
  std::vector<std::pair<ApplicationId, AmCallbacks*>> masters;
  for (const auto& [app, state] : apps_) {
    if (state.active && state.callbacks != nullptr) {
      masters.emplace_back(app, state.callbacks);
    }
  }
  std::sort(masters.begin(), masters.end());
  for (const auto& [app, cb] : masters) cb->OnNodeDraining(node, deadline);
}

bool ResourceManager::DecommissionNode(NodeId node) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  if (!ns.alive) return false;
  for (const auto& [id, c] : containers_) {
    if (c.node == node && c.is_am) return false;
  }
  AccrueFairness();
  // Vacate remaining task containers (kDrained: requeued, uncharged), in
  // ascending container id.
  std::vector<Container> vacated;
  for (const auto& [id, c] : containers_) {
    if (c.node == node) vacated.push_back(c);
  }
  std::sort(vacated.begin(), vacated.end(),
            [](const Container& a, const Container& b) { return a.id < b.id; });
  for (const Container& c : vacated) {
    DropContainer(c, ContainerLossReason::kDrained, /*notify=*/true);
  }
  UnindexNode(node);
  ns.alive = false;
  ns.draining = false;
  ns.free_vcores = 0;
  ns.free_memory_mb = 0.0;
  total_vcores_ -= cluster_->node(node).cores;
  total_memory_mb_ -= cluster_->node(node).memory_mb;
  FairnessRebuild();
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kMembership, "node_decommissioned",
                     /*app=*/-1, /*container=*/-1, /*task=*/-1, node,
                     static_cast<double>(vacated.size()));
  }
  ScheduleAllocationPass();
  return true;
}

bool ResourceManager::DrainContainer(ContainerId id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return false;
  Container c = it->second;
  if (c.is_am) return false;
  AccrueFairness();
  DropContainer(c, ContainerLossReason::kDrained, /*notify=*/true);
  ScheduleAllocationPass();
  return true;
}

bool ResourceManager::IsNodeDraining(NodeId node) const {
  const NodeState& ns = nodes_[static_cast<size_t>(node)];
  return ns.alive && ns.draining;
}

int ResourceManager::containers_on(NodeId node) const {
  int count = 0;
  for (const auto& [id, c] : containers_) {
    if (c.node == node) ++count;
  }
  return count;
}

void ResourceManager::FailApplication(ApplicationId app,
                                      const std::string& reason) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return;
  AccrueFairness();
  DropAppFootprint(app);
  it->second.active = false;
  FairnessDrop(app);
  // Drop the failed application's pending requests.
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const PendingRequest& p) {
                                if (p.app != app) return false;
                                RemovePending(app, p.request);
                                return true;
                              }),
               queue_.end());
  // Reclaim every container the app still holds (AM and in-flight
  // tasks), ascending container id. The master is presumed dead: nothing
  // is notified.
  std::vector<Container> owned;
  for (const auto& [id, c] : containers_) {
    if (c.app == app) owned.push_back(c);
  }
  std::sort(owned.begin(), owned.end(),
            [](const Container& a, const Container& b) { return a.id < b.id; });
  for (const Container& c : owned) {
    DropContainer(c, ContainerLossReason::kNodeLost, /*notify=*/false);
  }
  ++counters_.app_failures;
  ++StatsOf(app).counters.app_failures;
  ++QueueStatsOf(app).counters.app_failures;
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kFailover, "app_failed", app);
  }
  std::string name = std::move(it->second.name);
  apps_.erase(app);
  ScheduleAllocationPass();
  if (app_failure_listener_) app_failure_listener_(app, name, reason);
}

bool ResourceManager::KillContainer(ContainerId id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return false;
  Container c = it->second;
  if (c.is_am) {
    FailApplication(c.app, "AM container killed");
    return true;
  }
  AccrueFairness();
  DropContainer(c, ContainerLossReason::kKilled, /*notify=*/true);
  ScheduleAllocationPass();
  return true;
}

void ResourceManager::AmHeartbeat(ApplicationId app) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return;
  it->second.last_heartbeat = cluster_->engine()->Now();
  if (!it->second.liveness_check_scheduled &&
      options_.am_liveness_timeout_s > 0.0) {
    it->second.liveness_check_scheduled = true;
    ScheduleLivenessCheck(
        app, it->second.last_heartbeat + options_.am_liveness_timeout_s);
  }
}

void ResourceManager::ScheduleLivenessCheck(ApplicationId app, double at) {
  cluster_->engine()->ScheduleAt(at, [this, app] {
    auto it = apps_.find(app);
    if (it == apps_.end()) return;  // finished or already failed
    double deadline =
        it->second.last_heartbeat + options_.am_liveness_timeout_s;
    if (cluster_->engine()->Now() + 1e-9 < deadline) {
      ScheduleLivenessCheck(app, deadline);  // heartbeats kept coming
      return;
    }
    FailApplication(app, StrFormat("AM heartbeat timeout (%.1fs)",
                                   options_.am_liveness_timeout_s));
  });
}

std::vector<Container> ResourceManager::RunningContainers() const {
  std::vector<Container> out;
  out.reserve(containers_.size());
  for (const auto& [id, c] : containers_) out.push_back(c);
  std::sort(out.begin(), out.end(),
            [](const Container& a, const Container& b) { return a.id < b.id; });
  return out;
}

bool ResourceManager::IsNodeAlive(NodeId node) const {
  return nodes_[static_cast<size_t>(node)].alive;
}

Result<NodeId> ResourceManager::AmNode(ApplicationId app) const {
  auto it = apps_.find(app);
  if (it == apps_.end()) return Status::NotFound("unknown application");
  auto cit = containers_.find(it->second.am_container);
  if (cit == containers_.end()) {
    return Status::NotFound("AM container gone");
  }
  return cit->second.node;
}

int ResourceManager::free_vcores(NodeId node) const {
  return nodes_[static_cast<size_t>(node)].free_vcores;
}

double ResourceManager::free_memory_mb(NodeId node) const {
  return nodes_[static_cast<size_t>(node)].free_memory_mb;
}

int ResourceManager::pending_requests(ApplicationId app) const {
  auto it = app_stats_.find(app);
  return it == app_stats_.end() ? 0 : it->second.pending_requests;
}

std::vector<ContainerRequest> ResourceManager::PendingRequestDump() const {
  std::vector<ContainerRequest> out;
  out.reserve(queue_.size());
  for (const PendingRequest& p : queue_) out.push_back(p.request);
  return out;
}

const TenantStats* ResourceManager::app_stats(ApplicationId app) const {
  auto it = app_stats_.find(app);
  return it == app_stats_.end() ? nullptr : &it->second;
}

const TenantStats* ResourceManager::queue_stats(
    const std::string& queue) const {
  auto it = queue_stats_.find(queue);
  return it == queue_stats_.end() ? nullptr : &it->second;
}

std::vector<ApplicationId> ResourceManager::KnownApplications() const {
  std::vector<ApplicationId> apps;
  apps.reserve(app_stats_.size());
  for (const auto& [app, stats] : app_stats_) apps.push_back(app);
  std::sort(apps.begin(), apps.end());
  return apps;
}

// ---- Fairness accounting ------------------------------------------------

bool ResourceManager::ContendedFairness(double* jain) const {
  // Demand-satisfaction ratio per active application: how much of its
  // demanded dominant share (allocated + queued) the app actually holds.
  // Fairness is only meaningful while >= 2 applications have demand and
  // at least one of them is backlogged. Computed from scratch, in
  // ascending app id (the exact arithmetic the incremental aggregates
  // are rebuilt to and tested against).
  std::vector<ApplicationId> ids;
  ids.reserve(apps_.size());
  for (const auto& [app, state] : apps_) {
    if (state.active) ids.push_back(app);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<double> xs;
  bool backlogged = false;
  for (ApplicationId app : ids) {
    auto it = app_stats_.find(app);
    if (it == app_stats_.end()) continue;
    double alloc = Dominant(it->second.usage, total_vcores_,
                            total_memory_mb_);
    double pend = Dominant(it->second.pending, total_vcores_,
                           total_memory_mb_);
    if (alloc + pend <= 0.0) continue;
    if (it->second.pending_requests > 0) backlogged = true;
    xs.push_back(alloc / (alloc + pend));
  }
  if (xs.size() < 2 || !backlogged) return false;
  *jain = JainFairnessIndex(xs);
  return true;
}

double ResourceManager::InstantFairness() const {
  double jain = 1.0;
  return ContendedFairness(&jain) ? jain : 1.0;
}

void ResourceManager::FairnessTouch(ApplicationId app) {
  auto it = apps_.find(app);
  if (it == apps_.end() || !it->second.active) return;
  AppState& st = it->second;
  if (st.fair_included) {
    fairness_agg_.sum_x -= st.fair_x;
    fairness_agg_.sum_x2 -= st.fair_x2;
    --fairness_agg_.n;
    if (st.fair_backlogged) --fairness_agg_.backlogged;
  }
  st.fair_x = 0.0;
  st.fair_x2 = 0.0;
  st.fair_included = false;
  st.fair_backlogged = false;
  auto as = app_stats_.find(app);
  if (as != app_stats_.end()) {
    double alloc = Dominant(as->second.usage, total_vcores_,
                            total_memory_mb_);
    double pend = Dominant(as->second.pending, total_vcores_,
                           total_memory_mb_);
    if (alloc + pend > 0.0) {
      st.fair_x = alloc / (alloc + pend);
      st.fair_x2 = st.fair_x * st.fair_x;
      st.fair_included = true;
      st.fair_backlogged = as->second.pending_requests > 0;
      fairness_agg_.sum_x += st.fair_x;
      fairness_agg_.sum_x2 += st.fair_x2;
      ++fairness_agg_.n;
      if (st.fair_backlogged) ++fairness_agg_.backlogged;
    }
  }
  // The +=/-= running sums accumulate rounding error; periodically snap
  // them back to the from-scratch values.
  if (++fairness_touches_ % 4096 == 0) FairnessRebuild();
}

void ResourceManager::FairnessDrop(ApplicationId app) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return;
  AppState& st = it->second;
  if (!st.fair_included) return;
  fairness_agg_.sum_x -= st.fair_x;
  fairness_agg_.sum_x2 -= st.fair_x2;
  --fairness_agg_.n;
  if (st.fair_backlogged) --fairness_agg_.backlogged;
  st.fair_x = 0.0;
  st.fair_x2 = 0.0;
  st.fair_included = false;
  st.fair_backlogged = false;
}

void ResourceManager::FairnessRebuild() {
  fairness_agg_ = FairnessAgg{};
  std::vector<ApplicationId> ids;
  ids.reserve(apps_.size());
  for (const auto& [app, state] : apps_) {
    if (state.active) ids.push_back(app);
  }
  std::sort(ids.begin(), ids.end());
  for (ApplicationId app : ids) {
    AppState& st = apps_.at(app);
    st.fair_x = 0.0;
    st.fair_x2 = 0.0;
    st.fair_included = false;
    st.fair_backlogged = false;
    auto as = app_stats_.find(app);
    if (as == app_stats_.end()) continue;
    double alloc = Dominant(as->second.usage, total_vcores_,
                            total_memory_mb_);
    double pend = Dominant(as->second.pending, total_vcores_,
                           total_memory_mb_);
    if (alloc + pend <= 0.0) continue;
    st.fair_x = alloc / (alloc + pend);
    st.fair_x2 = st.fair_x * st.fair_x;
    st.fair_included = true;
    st.fair_backlogged = as->second.pending_requests > 0;
    fairness_agg_.sum_x += st.fair_x;
    fairness_agg_.sum_x2 += st.fair_x2;
    ++fairness_agg_.n;
    if (st.fair_backlogged) ++fairness_agg_.backlogged;
  }
}

void ResourceManager::AccrueFairness() {
  double now = cluster_->engine()->Now();
  double dt = now - fairness_last_;
  fairness_last_ = now;
  if (dt <= 0.0) return;
  if (fairness_agg_.n < 2 || fairness_agg_.backlogged <= 0) return;
  double jain =
      fairness_agg_.sum_x2 <= 0.0
          ? 1.0
          : (fairness_agg_.sum_x * fairness_agg_.sum_x) /
                (static_cast<double>(fairness_agg_.n) * fairness_agg_.sum_x2);
  fairness_integral_ += jain * dt;
  fairness_time_ += dt;
}

double ResourceManager::TimeAveragedFairness() const {
  // Include the open interval since the last state change.
  double integral = fairness_integral_;
  double time = fairness_time_;
  double dt = cluster_->engine()->Now() - fairness_last_;
  if (dt > 0.0 && fairness_agg_.n >= 2 && fairness_agg_.backlogged > 0) {
    double jain =
        fairness_agg_.sum_x2 <= 0.0
            ? 1.0
            : (fairness_agg_.sum_x * fairness_agg_.sum_x) /
                  (static_cast<double>(fairness_agg_.n) *
                   fairness_agg_.sum_x2);
    integral += jain * dt;
    time += dt;
  }
  return time > 0.0 ? integral / time : 1.0;
}

// ---- Allocation ---------------------------------------------------------

void ResourceManager::ScheduleAllocationPass() {
  if (pass_scheduled_) return;
  pass_scheduled_ = true;
  cluster_->engine()->ScheduleAfter(options_.allocation_delay_s, [this] {
    pass_scheduled_ = false;
    AllocationPass();
  });
}

NodeId ResourceManager::TryPlaceScan(const ContainerRequest& r) {
  // Seed placement semantics, shared across all RM schedulers: the
  // preferred node first, then (unless strict) a rotating scan over
  // nodes with capacity that are not blacklisted. Deferred strict
  // requests wait.
  if (r.preferred_node != kInvalidNode &&
      Fits(nodes_[static_cast<size_t>(r.preferred_node)], r)) {
    return r.preferred_node;
  }
  if (r.strict_locality) return kInvalidNode;
  int total = cluster_->num_nodes();
  for (int step = 0; step < total; ++step) {
    NodeId n = (next_alloc_node_ + step) % total;
    if (!Fits(nodes_[static_cast<size_t>(n)], r)) continue;
    if (std::find(r.blacklist.begin(), r.blacklist.end(), n) !=
        r.blacklist.end()) {
      continue;
    }
    next_alloc_node_ = (n + 1) % total;
    return n;
  }
  return kInvalidNode;
}

NodeId ResourceManager::TryPlace(const ContainerRequest& r) {
  if (r.preferred_node != kInvalidNode &&
      Fits(nodes_[static_cast<size_t>(r.preferred_node)], r)) {
    return r.preferred_node;
  }
  if (r.strict_locality) return kInvalidNode;
  // A request needing nothing fits on full nodes too, which the open set
  // excludes by design; take the fleet scan (rare: tests only).
  if (r.vcores <= 0 && r.memory_mb <= 0.0) return TryPlaceScan(r);
  if (open_nodes_.empty()) return kInvalidNode;
  // O(1) infeasibility: every node that could fit the request has free
  // capacity (hence is indexed), so if even the best open node falls
  // short in either dimension, no node fits.
  if ((r.vcores > 0 && *open_vcores_.rbegin() < r.vcores) ||
      (r.memory_mb > 0.0 && *open_memory_.rbegin() < r.memory_mb)) {
    return kInvalidNode;
  }
  // Rotating scan restricted to open nodes: visits candidates in exactly
  // the order the full-fleet scan would (ascending id from
  // next_alloc_node_, wrapping), skipping only nodes that scan would
  // have rejected anyway.
  int total = cluster_->num_nodes();
  auto it = open_nodes_.lower_bound(next_alloc_node_);
  for (size_t visited = 0, n_open = open_nodes_.size(); visited < n_open;
       ++visited) {
    if (it == open_nodes_.end()) it = open_nodes_.begin();
    NodeId n = *it;
    ++it;
    if (!Fits(nodes_[static_cast<size_t>(n)], r)) continue;
    if (std::find(r.blacklist.begin(), r.blacklist.end(), n) !=
        r.blacklist.end()) {
      continue;
    }
    next_alloc_node_ = (n + 1) % total;
    return n;
  }
  return kInvalidNode;
}

void ResourceManager::CommitAllocation(PassSlot& s, NodeId chosen,
                                       int* pass_allocations) {
  const ContainerRequest& r = s.req.request;
  s.consumed = true;
  ++*pass_allocations;
  RemovePending(s.req.app, r);
  double wait = cluster_->engine()->Now() - s.req.submitted_at;
  StatsOf(s.req.app).wait_times_s.push_back(wait);
  QueueStatsOf(s.req.app).wait_times_s.push_back(wait);
  Container* c = AllocateOn(s.req.app, chosen, r.vcores, r.memory_mb);
  c->priority = r.priority;
  if (tracer_ != nullptr) {
    tracer_->Begin(SpanCategory::kContainer, "container", s.req.app, c->id,
                   /*task=*/-1, chosen);
    tracer_->Instant(SpanCategory::kContainer, "container_allocated",
                     s.req.app, c->id, /*task=*/r.cookie, chosen, wait);
  }
  AmCallbacks* cb = apps_.at(s.req.app).callbacks;
  Container copy = *c;
  int64_t cookie = r.cookie;
  // Deliver the allocation asynchronously (AM heartbeat).
  cluster_->engine()->ScheduleAfter(
      0.0, [cb, copy, cookie] { cb->OnContainerAllocated(copy, cookie); });
}

void ResourceManager::FullScanPass(std::vector<PassSlot>& slots,
                                   const RmTenancyView& view,
                                   bool scan_placement,
                                   int* pass_allocations) {
  // The generic strategy loop: rebuild the eligible candidate list and
  // let SelectNext re-score it for every pick. O(pending²) per pass —
  // correct for arbitrary strategies, and (with scan placement) the
  // pre-refactor baseline the incremental engines are gated against.
  std::vector<RmCandidate> eligible;
  while (true) {
    eligible.clear();
    for (size_t i = 0; i < slots.size(); ++i) {
      const PassSlot& s = slots[i];
      if (s.consumed || !s.eligible) continue;
      RmCandidate c;
      c.slot = i;
      c.app = s.req.app;
      c.queue = &app_stats_.at(s.req.app).queue;
      c.request = &s.req.request;
      c.submitted_at = s.req.submitted_at;
      eligible.push_back(c);
    }
    if (eligible.empty()) break;
    int pick = scheduler_->SelectNext(eligible, view);
    if (pick < 0 || pick >= static_cast<int>(eligible.size())) break;
    PassSlot& s = slots[eligible[static_cast<size_t>(pick)].slot];
    NodeId chosen = scan_placement ? TryPlaceScan(s.req.request)
                                   : TryPlace(s.req.request);
    if (chosen == kInvalidNode) {
      s.eligible = false;
      continue;
    }
    CommitAllocation(s, chosen, pass_allocations);
  }
}

void ResourceManager::FifoPass(std::vector<PassSlot>& slots,
                               int* pass_allocations) {
  // FIFO always picks the first live slot, and a slot leaves the live
  // set whether placement succeeds or fails — so one forward sweep makes
  // exactly the legacy loop's decisions without rebuilding anything.
  for (PassSlot& s : slots) {
    if (s.consumed || !s.eligible) continue;
    NodeId chosen = TryPlace(s.req.request);
    if (chosen == kInvalidNode) {
      s.eligible = false;
      continue;
    }
    CommitAllocation(s, chosen, pass_allocations);
  }
}

template <typename Key>
void ResourceManager::GroupedPass(std::vector<PassSlot>& slots,
                                  const RmTenancyView& view,
                                  int* pass_allocations) {
  // Capacity (Key = queue name) and fair (Key = app id) both reduce to:
  // within a group, candidates go in FIFO order; across groups, the
  // group with the smallest (score, key) wins, where the score depends
  // only on the group's own usage. So instead of re-scoring every
  // pending request per pick (the FullScanPass), keep one cursor per
  // group and a heap over group heads. Two facts keep this exact:
  //
  //  * usage only grows within a pass, so a candidate that fails
  //    WithinMaxShare now fails for the rest of the pass — cursor skips
  //    over max-share failures are permanent;
  //  * a group's score changes only when the group itself allocates
  //    (capacity: its queue's usage; fair: the app's own usage), and the
  //    group's heap entry is out of the heap while it is being
  //    processed, so heap entries never carry stale scores. Heads can go
  //    stale (a same-queue sibling's allocation can push later
  //    candidates over the max share), hence the re-advance on pop.
  constexpr bool by_queue = std::is_same_v<Key, std::string>;
  struct Group {
    std::vector<size_t> slots;
    size_t cursor = 0;
    const std::string* queue = nullptr;
  };
  std::map<Key, Group> groups;
  for (size_t i = 0; i < slots.size(); ++i) {
    const PassSlot& s = slots[i];
    if (s.consumed) continue;
    const std::string* q = &app_stats_.at(s.req.app).queue;
    Key key;
    if constexpr (by_queue) {
      key = *q;
    } else {
      key = s.req.app;
    }
    Group& g = groups[key];
    g.slots.push_back(i);
    g.queue = q;
  }
  // Head of a group: its first slot (FIFO) that is still live and would
  // stay within the queue's max share. -1 when exhausted.
  auto advance = [&](Group& g) -> ptrdiff_t {
    while (g.cursor < g.slots.size()) {
      size_t idx = g.slots[g.cursor];
      const PassSlot& s = slots[idx];
      if (s.consumed || !s.eligible) {
        ++g.cursor;
        continue;
      }
      if (!view.WithinMaxShare(*g.queue, s.req.request)) {
        ++g.cursor;  // permanent: usage is monotone within the pass
        continue;
      }
      return static_cast<ptrdiff_t>(idx);
    }
    return -1;
  };
  auto score_of = [&](const Key& key, const Group& g) -> double {
    if constexpr (by_queue) {
      // CapacityRmScheduler's pressure: queue dominant share over its
      // guaranteed share.
      ResourceUsage used;
      auto qs_it = queue_stats_.find(*g.queue);
      if (qs_it != queue_stats_.end()) used = qs_it->second.usage;
      double guaranteed = 1.0;
      auto cfg_it = queue_configs_.find(*g.queue);
      if (cfg_it != queue_configs_.end()) {
        guaranteed = cfg_it->second.guaranteed_share;
      }
      if (guaranteed <= 0.0) guaranteed = 1e-9;
      return view.DominantShare(used) / guaranteed;
    } else {
      // FairRmScheduler's share: app dominant share over its queue's
      // weight.
      ResourceUsage used;
      auto as_it = app_stats_.find(key);
      if (as_it != app_stats_.end()) used = as_it->second.usage;
      double weight = 1.0;
      auto cfg_it = queue_configs_.find(*g.queue);
      if (cfg_it != queue_configs_.end()) weight = cfg_it->second.weight;
      if (weight <= 0.0) weight = 1e-9;
      return view.DominantShare(used) / weight;
    }
  };
  struct HeapEnt {
    double score;
    const Key* key;
    Group* group;
  };
  // Min-heap on (score, key): ties go to the smaller key, matching the
  // strategies' "< best_queue" / "< best_app" tie-breaks.
  struct Worse {
    bool operator()(const HeapEnt& a, const HeapEnt& b) const {
      if (a.score != b.score) return a.score > b.score;
      return *a.key > *b.key;
    }
  };
  std::priority_queue<HeapEnt, std::vector<HeapEnt>, Worse> heap;
  for (auto& [key, g] : groups) {
    if (advance(g) >= 0) heap.push(HeapEnt{score_of(key, g), &key, &g});
  }
  while (!heap.empty()) {
    HeapEnt e = heap.top();
    heap.pop();
    Group& g = *e.group;
    ptrdiff_t idx = advance(g);
    if (idx < 0) continue;  // exhausted since pushed
    PassSlot& s = slots[static_cast<size_t>(idx)];
    NodeId chosen = TryPlace(s.req.request);
    if (chosen == kInvalidNode) {
      // Same as the legacy loop: the slot leaves the pass, the group's
      // next candidate competes at the unchanged score.
      s.eligible = false;
      heap.push(e);
      continue;
    }
    CommitAllocation(s, chosen, pass_allocations);
    if (advance(g) >= 0) heap.push(HeapEnt{score_of(*e.key, g), e.key, &g});
  }
}

void ResourceManager::AllocationPass() {
  auto wall_start = std::chrono::steady_clock::now();
  AccrueFairness();
  // Snapshot the queue into a slot table. Each pass, the strategy picks
  // the next slot to try; a slot is consumed on success or becomes
  // ineligible for the rest of the pass on failure, so the loop always
  // terminates. Un-consumed requests return to the queue in their
  // original order (FIFO therefore reproduces the original single-queue
  // behaviour decision for decision).
  std::vector<PassSlot> slots;
  slots.reserve(queue_.size());
  for (PendingRequest& p : queue_) slots.push_back(PassSlot{std::move(p)});
  queue_.clear();
  for (PassSlot& s : slots) {
    auto it = apps_.find(s.req.app);
    if (it == apps_.end() || !it->second.active) {
      s.consumed = true;  // drop requests of departed applications
      RemovePending(s.req.app, s.req.request);
    }
  }

  RmTenancyView view;
  view.total_vcores = total_vcores_;
  view.total_memory_mb = total_memory_mb_;
  view.app_stats = &app_stats_;
  view.queue_stats = &queue_stats_;
  view.queue_configs = &queue_configs_;

  int pass_allocations = 0;
  if (options_.allocation_mode == "full-scan") {
    FullScanPass(slots, view, /*scan_placement=*/true, &pass_allocations);
  } else {
    switch (scheduler_->kind()) {
      case RmStrategyKind::kFifo:
        FifoPass(slots, &pass_allocations);
        break;
      case RmStrategyKind::kCapacity:
        GroupedPass<std::string>(slots, view, &pass_allocations);
        break;
      case RmStrategyKind::kFair:
        GroupedPass<ApplicationId>(slots, view, &pass_allocations);
        break;
      case RmStrategyKind::kCustom:
        // Unknown strategy: generic loop, but still indexed placement.
        FullScanPass(slots, view, /*scan_placement=*/false,
                     &pass_allocations);
        break;
    }
  }

  for (PassSlot& s : slots) {
    if (!s.consumed) queue_.push_back(std::move(s.req));
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kScheduler, "allocation_pass", /*app=*/-1,
                     /*container=*/-1, /*task=*/-1, /*node=*/-1,
                     static_cast<double>(pass_allocations),
                     static_cast<int64_t>(queue_.size()));
  }
  UpdateStarvation();
  ++passes_;
  pass_wall_ns_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
}

bool ResourceManager::QueueStarved(const std::string& queue) const {
  auto cfg_it = queue_configs_.find(queue);
  if (cfg_it == queue_configs_.end()) return false;
  auto qs_it = queue_stats_.find(queue);
  if (qs_it == queue_stats_.end()) return false;
  const TenantStats& qs = qs_it->second;
  if (qs.pending_requests <= 0) return false;  // no unmet demand
  return Dominant(qs.usage, total_vcores_, total_memory_mb_) + 1e-9 <
         cfg_it->second.guaranteed_share;
}

void ResourceManager::UpdateStarvation() {
  double now = cluster_->engine()->Now();
  int budget = options_.max_preempt_per_round;
  bool preempted_any = false;
  for (const auto& [qname, cfg] : queue_configs_) {
    const std::string& queue = qname;
    QueueStarvation& st = starvation_[queue];
    bool starved = QueueStarved(queue);
    if (!starved) {
      if (st.since >= 0.0) {
        // Episode closed: the queue climbed back to its guarantee (or its
        // backlog drained). Record the restoration latency.
        double dt = now - st.since;
        TenantStats& qs = queue_stats_[queue];
        qs.time_under_guarantee_s += dt;
        qs.restoration_latency_s.push_back(dt);
        st.since = -1.0;
      }
      continue;
    }
    if (st.since < 0.0) st.since = now;
    if (!options_.preemption) continue;
    double deadline = st.since + options_.preemption_grace_s;
    if (now + 1e-9 < deadline) {
      // Within grace: give voluntary releases a chance first, but make
      // sure a pass (and with it a preemption round) runs at expiry.
      if (!st.wakeup_scheduled) {
        st.wakeup_scheduled = true;
        cluster_->engine()->ScheduleAt(deadline, [this, queue] {
          auto it = starvation_.find(queue);
          if (it != starvation_.end()) it->second.wakeup_scheduled = false;
          AllocationPass();
        });
      }
      continue;
    }
    if (budget <= 0) continue;  // this round's kills are spent
    int killed = PreemptFor(queue, budget);
    budget -= killed;
    if (killed > 0) preempted_any = true;
  }
  // Freed capacity is matched against the starved backlog on the next
  // pass (one allocation delay, like any other release).
  if (preempted_any) ScheduleAllocationPass();
}

int ResourceManager::PreemptFor(const std::string& starved, int budget) {
  auto cfg_it = queue_configs_.find(starved);
  auto qs_it = queue_stats_.find(starved);
  if (cfg_it == queue_configs_.end() || qs_it == queue_stats_.end()) return 0;
  const RmQueueConfig& cfg = cfg_it->second;
  const TenantStats& qs = qs_it->second;
  // Reclaim no more than the starved queue can actually use: its deficit
  // against the guarantee, capped by its pending demand.
  ResourceUsage needed;
  double deficit_vc = cfg.guaranteed_share * total_vcores_ - qs.usage.vcores;
  double deficit_mb =
      cfg.guaranteed_share * total_memory_mb_ - qs.usage.memory_mb;
  needed.vcores = static_cast<int>(
      std::ceil(std::max(0.0, std::min(deficit_vc,
                                       static_cast<double>(qs.pending.vcores)))));
  needed.memory_mb = std::max(0.0, std::min(deficit_mb, qs.pending.memory_mb));
  if (needed.vcores <= 0 && needed.memory_mb <= 0.0) return 0;

  // Candidates ascending by container id: the victim comparator's
  // surplus leg is epsilon-banded, so scan order is behaviour-visible.
  std::vector<PreemptionCandidate> candidates;
  candidates.reserve(containers_.size());
  for (const auto& [id, c] : containers_) {
    auto as_it = app_stats_.find(c.app);
    if (as_it == app_stats_.end()) continue;
    candidates.push_back(PreemptionCandidate{c, &as_it->second.queue});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PreemptionCandidate& a, const PreemptionCandidate& b) {
              return a.container.id < b.container.id;
            });
  RmTenancyView view;
  view.total_vcores = total_vcores_;
  view.total_memory_mb = total_memory_mb_;
  view.app_stats = &app_stats_;
  view.queue_stats = &queue_stats_;
  view.queue_configs = &queue_configs_;
  std::vector<ContainerId> victims =
      SelectPreemptionVictims(candidates, view, starved, needed, budget);
  int killed = 0;
  for (ContainerId id : victims) {
    auto it = containers_.find(id);
    if (it == containers_.end()) continue;
    Container victim = it->second;
    HIWAY_CHECK(!victim.is_am);  // invariant: AM containers are never preempted
    DropContainer(victim, ContainerLossReason::kPreempted, /*notify=*/true);
    ++killed;
  }
  return killed;
}

}  // namespace hiway
