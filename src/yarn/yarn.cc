#include "src/yarn/yarn.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hiway {

ResourceManager::ResourceManager(Cluster* cluster, YarnOptions options)
    : cluster_(cluster), options_(options) {
  nodes_.resize(static_cast<size_t>(cluster_->num_nodes()));
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    nodes_[static_cast<size_t>(n)].free_vcores = cluster_->node(n).cores;
    nodes_[static_cast<size_t>(n)].free_memory_mb =
        cluster_->node(n).memory_mb;
  }
}

Container* ResourceManager::AllocateOn(ApplicationId app, NodeId node,
                                       int vcores, double memory_mb) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  HIWAY_CHECK(ns.alive);
  HIWAY_CHECK(ns.free_vcores >= vcores && ns.free_memory_mb >= memory_mb);
  ns.free_vcores -= vcores;
  ns.free_memory_mb -= memory_mb;
  Container c;
  c.id = next_container_++;
  c.app = app;
  c.node = node;
  c.vcores = vcores;
  c.memory_mb = memory_mb;
  auto [it, inserted] = containers_.emplace(c.id, c);
  HIWAY_CHECK(inserted);
  ++counters_.allocations;
  return &it->second;
}

Result<ApplicationId> ResourceManager::RegisterApplication(
    const std::string& name, AmCallbacks* callbacks, int am_vcores,
    double am_memory_mb, NodeId am_node) {
  NodeId target = am_node;
  if (target == kInvalidNode) {
    for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
      const NodeState& ns = nodes_[static_cast<size_t>(n)];
      if (ns.alive && ns.free_vcores >= am_vcores &&
          ns.free_memory_mb >= am_memory_mb) {
        target = n;
        break;
      }
    }
    if (target == kInvalidNode) {
      return Status::ResourceExhausted(
          "no node has capacity for the AM container of " + name);
    }
  } else {
    const NodeState& ns = nodes_[static_cast<size_t>(target)];
    if (!ns.alive || ns.free_vcores < am_vcores ||
        ns.free_memory_mb < am_memory_mb) {
      return Status::ResourceExhausted("requested AM node lacks capacity");
    }
  }
  ApplicationId app = next_app_++;
  Container* am = AllocateOn(app, target, am_vcores, am_memory_mb);
  AppState state;
  state.name = name;
  state.callbacks = callbacks;
  state.am_container = am->id;
  apps_.emplace(app, std::move(state));
  return app;
}

void ResourceManager::UnregisterApplication(ApplicationId app) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return;
  it->second.active = false;
  // Drop pending requests.
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [app](const PendingRequest& p) {
                                return p.app == app;
                              }),
               queue_.end());
  if (it->second.am_container != kInvalidContainer) {
    ReleaseContainer(it->second.am_container);
  }
  apps_.erase(it);
}

void ResourceManager::SubmitRequest(ApplicationId app,
                                    const ContainerRequest& request) {
  HIWAY_CHECK(apps_.find(app) != apps_.end());
  ++counters_.requests;
  queue_.push_back(PendingRequest{app, request});
  ScheduleAllocationPass();
}

int ResourceManager::CancelRequests(ApplicationId app, int64_t cookie) {
  int removed = 0;
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const PendingRequest& p) {
                                if (p.app == app &&
                                    p.request.cookie == cookie) {
                                  ++removed;
                                  return true;
                                }
                                return false;
                              }),
               queue_.end());
  return removed;
}

void ResourceManager::ReleaseContainer(ContainerId id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return;
  const Container& c = it->second;
  NodeState& ns = nodes_[static_cast<size_t>(c.node)];
  if (ns.alive) {
    ns.free_vcores += c.vcores;
    ns.free_memory_mb += c.memory_mb;
  }
  ++counters_.releases;
  containers_.erase(it);
  ScheduleAllocationPass();
}

void ResourceManager::KillNode(NodeId node) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  if (!ns.alive) return;
  ns.alive = false;
  ns.free_vcores = 0;
  ns.free_memory_mb = 0.0;
  // Report running containers on the node as lost.
  std::vector<Container> lost;
  for (auto& [id, c] : containers_) {
    if (c.node == node) lost.push_back(c);
  }
  for (const Container& c : lost) {
    containers_.erase(c.id);
    ++counters_.lost_containers;
    auto app_it = apps_.find(c.app);
    if (app_it != apps_.end() && app_it->second.callbacks != nullptr) {
      AmCallbacks* cb = app_it->second.callbacks;
      Container copy = c;
      cluster_->engine()->ScheduleAfter(
          options_.nm_heartbeat_s, [cb, copy] { cb->OnContainerLost(copy); });
    }
  }
  ScheduleAllocationPass();
}

bool ResourceManager::IsNodeAlive(NodeId node) const {
  return nodes_[static_cast<size_t>(node)].alive;
}

Result<NodeId> ResourceManager::AmNode(ApplicationId app) const {
  auto it = apps_.find(app);
  if (it == apps_.end()) return Status::NotFound("unknown application");
  auto cit = containers_.find(it->second.am_container);
  if (cit == containers_.end()) {
    return Status::NotFound("AM container gone");
  }
  return cit->second.node;
}

int ResourceManager::free_vcores(NodeId node) const {
  return nodes_[static_cast<size_t>(node)].free_vcores;
}

double ResourceManager::free_memory_mb(NodeId node) const {
  return nodes_[static_cast<size_t>(node)].free_memory_mb;
}

std::vector<ContainerRequest> ResourceManager::PendingRequestDump() const {
  std::vector<ContainerRequest> out;
  out.reserve(queue_.size());
  for (const PendingRequest& p : queue_) out.push_back(p.request);
  return out;
}

void ResourceManager::ScheduleAllocationPass() {
  if (pass_scheduled_) return;
  pass_scheduled_ = true;
  cluster_->engine()->ScheduleAfter(options_.allocation_delay_s, [this] {
    pass_scheduled_ = false;
    AllocationPass();
  });
}

void ResourceManager::AllocationPass() {
  // FIFO with locality preference: each queued request first tries its
  // preferred node, then (unless strict) any node with capacity that is
  // not blacklisted. Deferred strict requests stay queued.
  bool allocated_any = false;
  std::deque<PendingRequest> still_pending;
  while (!queue_.empty()) {
    PendingRequest p = std::move(queue_.front());
    queue_.pop_front();
    auto app_it = apps_.find(p.app);
    if (app_it == apps_.end() || !app_it->second.active) continue;
    const ContainerRequest& r = p.request;
    NodeId chosen = kInvalidNode;
    if (r.preferred_node != kInvalidNode &&
        Fits(nodes_[static_cast<size_t>(r.preferred_node)], r)) {
      chosen = r.preferred_node;
    } else if (!r.strict_locality) {
      int total = cluster_->num_nodes();
      for (int step = 0; step < total; ++step) {
        NodeId n = (next_alloc_node_ + step) % total;
        if (!Fits(nodes_[static_cast<size_t>(n)], r)) continue;
        if (std::find(r.blacklist.begin(), r.blacklist.end(), n) !=
            r.blacklist.end()) {
          continue;
        }
        chosen = n;
        next_alloc_node_ = (n + 1) % total;
        break;
      }
    }
    if (chosen == kInvalidNode) {
      still_pending.push_back(std::move(p));
      continue;
    }
    Container* c = AllocateOn(p.app, chosen, r.vcores, r.memory_mb);
    allocated_any = true;
    AmCallbacks* cb = app_it->second.callbacks;
    Container copy = *c;
    int64_t cookie = r.cookie;
    // Deliver the allocation asynchronously (AM heartbeat).
    cluster_->engine()->ScheduleAfter(
        0.0, [cb, copy, cookie] { cb->OnContainerAllocated(copy, cookie); });
  }
  queue_ = std::move(still_pending);
  (void)allocated_any;
}

}  // namespace hiway
