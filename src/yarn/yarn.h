// Simulated Hadoop YARN: a ResourceManager that leases containers
// (fixed-size slices of a node's cores and memory) to per-application
// masters, honouring locality preferences, strict placements (for static
// schedules), and blacklists (for failure retries).
//
// This implements exactly the scheduling contract Hi-WAY consumes
// (Sec. 3.1 of the paper): request container -> allocation callback ->
// launch work -> release / failure notification. YARN's multi-tenant
// fairness machinery is out of scope; each experiment runs one AM.

#ifndef HIWAY_YARN_YARN_H_
#define HIWAY_YARN_YARN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sim/cluster.h"

namespace hiway {

using ApplicationId = int32_t;
using ContainerId = int64_t;
constexpr ContainerId kInvalidContainer = -1;

/// A leased slice of one node.
struct Container {
  ContainerId id = kInvalidContainer;
  ApplicationId app = -1;
  NodeId node = kInvalidNode;
  int vcores = 1;
  double memory_mb = 1024.0;
};

/// What an application asks the RM for.
struct ContainerRequest {
  int vcores = 1;
  double memory_mb = 1024.0;
  /// Preferred host (data locality); kInvalidNode = anywhere.
  NodeId preferred_node = kInvalidNode;
  /// If true the request may only be satisfied on `preferred_node`
  /// (static schedules pin their placements).
  bool strict_locality = false;
  /// Nodes this request must avoid (failed-attempt blacklisting).
  std::vector<NodeId> blacklist;
  /// Opaque cookie passed back with the allocation.
  int64_t cookie = 0;
};

/// Callbacks implemented by an application master.
class AmCallbacks {
 public:
  virtual ~AmCallbacks() = default;
  /// A previously submitted request has been satisfied.
  virtual void OnContainerAllocated(const Container& container,
                                    int64_t cookie) = 0;
  /// A running container was lost (its node died).
  virtual void OnContainerLost(const Container& container) = 0;
};

/// RM-side counters for master-load accounting (Fig. 6).
struct RmCounters {
  int64_t requests = 0;
  int64_t allocations = 0;
  int64_t releases = 0;
  int64_t lost_containers = 0;
};

struct YarnOptions {
  /// Latency between a request (or a release) and the allocation pass,
  /// modelling the NM/AM heartbeat cadence.
  double allocation_delay_s = 0.5;
  /// NodeManager heartbeat period; only used for master-load accounting.
  double nm_heartbeat_s = 1.0;
};

class ResourceManager {
 public:
  ResourceManager(Cluster* cluster, YarnOptions options);
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  /// Registers an application and allocates its AM container (the paper
  /// runs one dedicated AM container per workflow). When `am_node` is
  /// given the AM is pinned there (the scalability experiment isolates the
  /// AM on its own VM); otherwise the RM picks any node with capacity.
  /// Returns the application id, or an error if no capacity exists.
  Result<ApplicationId> RegisterApplication(const std::string& name,
                                            AmCallbacks* callbacks,
                                            int am_vcores, double am_memory_mb,
                                            NodeId am_node = kInvalidNode);

  /// Releases the AM container and drops pending requests.
  void UnregisterApplication(ApplicationId app);

  /// Queues a container request; the AM is called back on allocation.
  void SubmitRequest(ApplicationId app, const ContainerRequest& request);

  /// Withdraws all pending (unallocated) requests of an application whose
  /// cookie matches `cookie`. Returns how many were removed.
  int CancelRequests(ApplicationId app, int64_t cookie);

  /// Returns a finished container's resources to its node.
  void ReleaseContainer(ContainerId id);

  /// Simulates a NodeManager crash: capacity disappears and running
  /// containers are reported lost to their AMs.
  void KillNode(NodeId node);

  bool IsNodeAlive(NodeId node) const;

  /// Node hosting an application's AM container.
  Result<NodeId> AmNode(ApplicationId app) const;

  int free_vcores(NodeId node) const;
  double free_memory_mb(NodeId node) const;

  /// Containers currently running (including AM containers).
  int running_containers() const {
    return static_cast<int>(containers_.size());
  }
  int pending_requests() const { return static_cast<int>(queue_.size()); }

  /// Snapshot of the pending request queue (diagnostics).
  std::vector<ContainerRequest> PendingRequestDump() const;

  const RmCounters& counters() const { return counters_; }
  const YarnOptions& options() const { return options_; }
  Cluster* cluster() const { return cluster_; }

 private:
  struct NodeState {
    int free_vcores = 0;
    double free_memory_mb = 0.0;
    bool alive = true;
  };
  struct PendingRequest {
    ApplicationId app;
    ContainerRequest request;
  };
  struct AppState {
    std::string name;
    AmCallbacks* callbacks = nullptr;
    ContainerId am_container = kInvalidContainer;
    bool active = true;
  };

  /// Matches pending requests against free capacity, FIFO with one pass
  /// of locality preference.
  void AllocationPass();
  void ScheduleAllocationPass();

  bool Fits(const NodeState& ns, const ContainerRequest& r) const {
    return ns.alive && ns.free_vcores >= r.vcores &&
           ns.free_memory_mb >= r.memory_mb;
  }

  Container* AllocateOn(ApplicationId app, NodeId node, int vcores,
                        double memory_mb);

  Cluster* cluster_;
  YarnOptions options_;
  RmCounters counters_;
  std::vector<NodeState> nodes_;
  std::map<ApplicationId, AppState> apps_;
  std::map<ContainerId, Container> containers_;
  std::deque<PendingRequest> queue_;
  ApplicationId next_app_ = 1;
  ContainerId next_container_ = 1;
  bool pass_scheduled_ = false;
  /// Rotating start position for relaxed allocations: real YARN assigns
  /// containers as NodeManager heartbeats arrive, which spreads load
  /// across nodes instead of packing the lowest node ids.
  NodeId next_alloc_node_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_YARN_YARN_H_
