// Simulated Hadoop YARN: a ResourceManager that leases containers
// (fixed-size slices of a node's cores and memory) to per-application
// masters, honouring locality preferences, strict placements (for static
// schedules), and blacklists (for failure retries).
//
// This implements the scheduling contract Hi-WAY consumes (Sec. 3.1 of
// the paper): request container -> allocation callback -> launch work ->
// release / failure notification — for MANY concurrent application
// masters sharing one cluster (the paper's scalability pillar: one AM
// per workflow). Which pending request is served first is delegated to a
// pluggable RmScheduler strategy (src/yarn/rm_scheduler.h): FIFO
// (default, the original single-tenant behaviour), a CapacityScheduler
// with per-queue guaranteed/maximum shares, or a FairScheduler using
// dominant-resource fairness. The RM additionally keeps per-application
// and per-queue accounting (counters, allocated shares, request wait
// times, a time-averaged Jain fairness index) for multi-tenant metrics.
//
// The hot path is built for thousands of concurrent applications on
// thousands of nodes (docs/scaling.md): per-event lookups go through
// open-addressing FlatHashMaps instead of std::map, placement consults
// an ordered index of nodes with free capacity instead of scanning the
// fleet, the allocation pass keeps per-queue/per-app candidate groups in
// a heap instead of re-scoring every pending request per pick, and the
// Jain fairness accounting maintains incremental aggregates instead of
// recomputing per-app shares on every state change. The pre-refactor
// full-scan pass survives behind YarnOptions::allocation_mode so tests
// and bench_scale can prove the incremental path schedule-identical and
// measure the speedup.

#ifndef HIWAY_YARN_YARN_H_
#define HIWAY_YARN_YARN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/flat_hash.h"
#include "src/common/result.h"
#include "src/sim/cluster.h"

namespace hiway {

class Tracer;

using ApplicationId = int32_t;
using ContainerId = int64_t;
constexpr ContainerId kInvalidContainer = -1;

class RmScheduler;
struct RmTenancyView;

/// A leased slice of one node.
struct Container {
  ContainerId id = kInvalidContainer;
  ApplicationId app = -1;
  NodeId node = kInvalidNode;
  int vcores = 1;
  double memory_mb = 1024.0;
  /// True for the container hosting the application's master process.
  bool is_am = false;
  /// Preemption priority inherited from the request (lower = preempted
  /// first); see docs/scheduling-model.md.
  int priority = 0;
  /// Virtual time the container was allocated (wasted-work accounting).
  double allocated_at = 0.0;
};

/// Why a running container was taken away from its application (see
/// docs/failure-model.md for the full failure taxonomy).
enum class ContainerLossReason {
  /// The hosting node died. AMs should NOT blacklist the node for the
  /// retried task: the RM already stopped placing there.
  kNodeLost,
  /// The container process was killed (fault injection). The node itself
  /// is healthy.
  kKilled,
  /// The RM reclaimed the container to restore another queue's
  /// guaranteed share. Like kNodeLost this is not the task's (or the
  /// node's) fault: AMs must neither charge the retry budget nor
  /// blacklist the node (docs/scheduling-model.md).
  kPreempted,
  /// The container was vacated because its node is draining (spot
  /// revocation warning or autoscaler decommission). Exactly the
  /// kPreempted exemption applies: no retry charge, no blacklist, the
  /// task re-queues immediately on the remaining fleet
  /// (docs/elastic-cluster.md).
  kDrained,
};

const char* ToString(ContainerLossReason reason);

/// What an application asks the RM for.
struct ContainerRequest {
  int vcores = 1;
  double memory_mb = 1024.0;
  /// Preferred host (data locality); kInvalidNode = anywhere.
  NodeId preferred_node = kInvalidNode;
  /// If true the request may only be satisfied on `preferred_node`
  /// (static schedules pin their placements).
  bool strict_locality = false;
  /// Nodes this request must avoid (failed-attempt blacklisting).
  std::vector<NodeId> blacklist;
  /// Opaque cookie passed back with the allocation.
  int64_t cookie = 0;
  /// Preemption priority of the resulting container: when the RM must
  /// reclaim capacity for a starved queue it kills lower values first.
  int priority = 0;
};

/// Callbacks implemented by an application master.
class AmCallbacks {
 public:
  virtual ~AmCallbacks() = default;
  /// A previously submitted request has been satisfied.
  virtual void OnContainerAllocated(const Container& container,
                                    int64_t cookie) = 0;
  /// A running container was lost; `reason` says why (node death vs.
  /// targeted kill) so the AM can decide whether blacklisting is useful.
  virtual void OnContainerLost(const Container& container,
                               ContainerLossReason reason) = 0;
  /// `node` entered the draining state (spot revocation warning or
  /// decommission) and disappears at virtual time `deadline`. The RM has
  /// already stopped placing new containers there; the AM should let
  /// work that finishes before the deadline run and proactively vacate
  /// (ResourceManager::DrainContainer) the rest. Default: do nothing —
  /// running containers are then lost at the deadline with kNodeLost.
  virtual void OnNodeDraining(NodeId node, double deadline) {
    (void)node;
    (void)deadline;
  }
};

/// RM-side counters for master-load accounting (Fig. 6). Kept both
/// globally and attributed per application / per queue.
struct RmCounters {
  int64_t requests = 0;
  int64_t allocations = 0;
  int64_t releases = 0;
  int64_t lost_containers = 0;
  /// Containers reclaimed from failed applications (orphans of a dead
  /// AM; the RM frees them without notifying the departed master).
  int64_t reclaimed_containers = 0;
  /// Applications the RM declared failed (AM container lost, AM
  /// heartbeat timeout, or an injected AM kill).
  int64_t app_failures = 0;
  /// Containers killed by the RM to restore a starved queue's guarantee
  /// (kPreempted losses; disjoint from lost_containers).
  int64_t preempted_containers = 0;
  /// Container-seconds thrown away by preemption (victim lifetime at
  /// kill time). wasted-work ratio = preempted_work_s / container_work_s.
  double preempted_work_s = 0.0;
  /// Containers vacated because their node was draining (kDrained;
  /// disjoint from both lost_containers and preempted_containers), and
  /// the container-seconds those vacations threw away.
  int64_t drained_containers = 0;
  double drained_work_s = 0.0;
  /// Container-seconds thrown away by genuine losses (kNodeLost/kKilled
  /// drops of live masters' containers) — the unwarned-kill counterpart
  /// of drained_work_s that bench_elastic's drain gate compares against.
  double lost_work_s = 0.0;
  /// Total container-seconds of finished task containers (AM containers
  /// excluded); denominator of the wasted-work ratio.
  double container_work_s = 0.0;
};

/// A (vcores, memory) pair: allocated resources or aggregate demand.
struct ResourceUsage {
  int vcores = 0;
  double memory_mb = 0.0;
};

/// Configuration of one RM scheduler queue. Shares are fractions of the
/// live cluster capacity (both vcores and memory); `guaranteed_share` is
/// what the capacity scheduler strives to give the queue under
/// contention, `max_share` is a hard ceiling, `weight` scales an
/// application's dominant share under the fair scheduler.
struct RmQueueConfig {
  std::string name = "default";
  double guaranteed_share = 1.0;
  double max_share = 1.0;
  double weight = 1.0;
};

/// Per-application / per-queue accounting snapshot.
struct TenantStats {
  RmCounters counters;
  /// Currently allocated resources (including the AM container).
  ResourceUsage usage;
  /// Aggregate size of queued (unallocated) requests.
  ResourceUsage pending;
  int pending_requests = 0;
  /// Request-to-allocation latencies, in submission order.
  std::vector<double> wait_times_s;
  /// Queue the tenant belongs to (apps) or the queue's own name.
  std::string queue;
  // -- Queue entries only (zero for per-application stats) ---------------
  /// Total virtual time the queue spent starved: backlogged yet below its
  /// guaranteed share (integrated over closed starvation episodes).
  double time_under_guarantee_s = 0.0;
  /// Duration of each closed starvation episode, in order: how long the
  /// queue took to climb back to its guarantee (or drain its backlog)
  /// after dropping below it. The guarantee-restoration latencies
  /// bench_preemption reports percentiles over.
  std::vector<double> restoration_latency_s;
};

struct YarnOptions {
  /// Latency between a request (or a release) and the allocation pass,
  /// modelling the NM/AM heartbeat cadence.
  double allocation_delay_s = 0.5;
  /// NodeManager heartbeat period; only used for master-load accounting.
  double nm_heartbeat_s = 1.0;
  /// RM scheduling strategy: "fifo" (default) | "capacity" | "fair".
  std::string scheduler = "fifo";
  /// Allocation-pass engine (docs/scaling.md): "incremental" (default)
  /// uses indexed placement, per-group candidate heaps, and single-sweep
  /// FIFO; "full-scan" is the pre-refactor O(pending²·nodes) pass kept
  /// for equivalence tests and as bench_scale's speedup baseline. Both
  /// produce identical schedules.
  std::string allocation_mode = "incremental";
  /// An application that has sent at least one AmHeartbeat() and then
  /// stays silent this long is declared failed (AM liveness tracking).
  /// Applications that never heartbeat are not monitored.
  double am_liveness_timeout_s = 10.0;
  /// Container preemption (docs/scheduling-model.md): when enabled, a
  /// queue that stays starved (backlogged below its guaranteed share)
  /// longer than `preemption_grace_s` reclaims capacity by killing task
  /// containers of over-guarantee queues — lowest priority first, never
  /// AM containers, at most `max_preempt_per_round` kills per allocation
  /// pass. Starvation episodes are tracked (and restoration latencies
  /// recorded) even when preemption itself is disabled.
  bool preemption = false;
  double preemption_grace_s = 5.0;
  int max_preempt_per_round = 2;
};

class ResourceManager {
 public:
  ResourceManager(Cluster* cluster, YarnOptions options);
  ~ResourceManager();
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  /// Replaces the scheduling strategy (existing pending requests are
  /// re-ordered by the new strategy from the next pass on).
  void SetRmScheduler(std::unique_ptr<RmScheduler> scheduler);
  const std::string& scheduler_name() const { return scheduler_name_; }

  /// Defines or reconfigures a queue. The "default" queue always exists
  /// (guaranteed = max = 1.0).
  void ConfigureQueue(const RmQueueConfig& config);
  const RmQueueConfig* queue_config(const std::string& name) const;
  std::vector<std::string> ConfiguredQueues() const;

  /// Registers an application and allocates its AM container (the paper
  /// runs one dedicated AM container per workflow). When `am_node` is
  /// given the AM is pinned there (the scalability experiment isolates the
  /// AM on its own VM); otherwise the RM picks any node with capacity.
  /// Returns the application id, or an error if no capacity exists or the
  /// queue is unknown.
  Result<ApplicationId> RegisterApplication(const std::string& name,
                                            AmCallbacks* callbacks,
                                            int am_vcores, double am_memory_mb,
                                            NodeId am_node = kInvalidNode,
                                            const std::string& queue =
                                                "default");

  /// Releases the AM container and drops pending requests.
  void UnregisterApplication(ApplicationId app);

  /// Queues a container request; the AM is called back on allocation.
  void SubmitRequest(ApplicationId app, const ContainerRequest& request);

  /// Withdraws all pending (unallocated) requests of an application whose
  /// cookie matches `cookie`. Returns how many were removed. Other
  /// applications' requests are never touched.
  int CancelRequests(ApplicationId app, int64_t cookie);

  /// Returns a finished container's resources to its node.
  void ReleaseContainer(ContainerId id);

  /// Simulates a NodeManager crash: capacity disappears, applications
  /// whose AM container lived on the node are failed (their surviving
  /// containers reclaimed, the failure listener notified), and the
  /// remaining lost containers are reported synchronously to their
  /// owning AMs with reason kNodeLost.
  void KillNode(NodeId node);

  // ---- Elastic membership (docs/elastic-cluster.md) ---------------------

  /// Onboards a node freshly appended to the cluster topology
  /// (Cluster::AddNode): its capacity joins the live pool and an
  /// allocation pass is scheduled, modelling the NodeManager's
  /// registration heartbeat. `node` must be the id Cluster::AddNode
  /// returned (nodes onboard in id order).
  void AddNode(NodeId node);

  /// Puts a live node into the draining state (active -> draining): no
  /// new containers are placed there, and every registered AM is told
  /// via OnNodeDraining(node, deadline) so it can let short tasks finish
  /// and vacate the rest. Idempotent; no-op for dead nodes. The RM does
  /// NOT act at the deadline itself — the caller follows up with
  /// KillNode (spot revocation) or DecommissionNode (graceful).
  void BeginDrain(NodeId node, double deadline);

  /// Gracefully retires a node (draining -> gone): remaining task
  /// containers are vacated with kDrained (no attempt charge), then the
  /// node's capacity leaves the pool. Refuses (returns false) when an AM
  /// container still lives there — drain it away first or use KillNode.
  bool DecommissionNode(NodeId node);

  /// Vacates one running task container with reason kDrained: the owning
  /// AM re-queues the task with no retry charge or blacklist entry (the
  /// proactive-requeue half of checkpoint-or-requeue during a drain).
  /// False for unknown ids; AM containers are refused.
  bool DrainContainer(ContainerId id);

  bool IsNodeDraining(NodeId node) const;

  /// Containers (tasks + AMs) currently hosted on `node`.
  int containers_on(NodeId node) const;

  /// Declares an application failed (AM process death): drops its
  /// pending requests, reclaims every container it still holds (AM and
  /// tasks) without callbacks to the — presumed dead — master, and
  /// invokes the app-failure listener. Unknown apps are ignored.
  void FailApplication(ApplicationId app, const std::string& reason);

  /// Kills one running container (fault injection / preemption). A task
  /// container is reported lost (kKilled) to its AM; killing an AM
  /// container fails the whole application. False for unknown ids.
  bool KillContainer(ContainerId id);

  /// AM liveness signal. The first heartbeat opts the application into
  /// liveness monitoring: miss `am_liveness_timeout_s` of heartbeats and
  /// the RM fails the application.
  void AmHeartbeat(ApplicationId app);

  /// Invoked whenever the RM declares an application failed, with the
  /// application's registered name and a human-readable reason. The
  /// dead AM's callbacks are never used again.
  using AppFailureListener = std::function<void(
      ApplicationId app, const std::string& name, const std::string& reason)>;
  void SetAppFailureListener(AppFailureListener listener) {
    app_failure_listener_ = std::move(listener);
  }

  /// Snapshot of running containers (diagnostics / fault injection),
  /// ascending container id.
  std::vector<Container> RunningContainers() const;

  bool IsNodeAlive(NodeId node) const;

  /// Node hosting an application's AM container.
  Result<NodeId> AmNode(ApplicationId app) const;

  int free_vcores(NodeId node) const;
  double free_memory_mb(NodeId node) const;

  /// Live cluster capacity (dead nodes excluded).
  int total_vcores() const { return total_vcores_; }
  double total_memory_mb() const { return total_memory_mb_; }

  /// Containers currently running (including AM containers).
  int running_containers() const {
    return static_cast<int>(containers_.size());
  }
  int pending_requests() const { return static_cast<int>(queue_.size()); }
  int pending_requests(ApplicationId app) const;

  /// Snapshot of the pending request queue (diagnostics).
  std::vector<ContainerRequest> PendingRequestDump() const;

  const RmCounters& counters() const { return counters_; }

  /// Footprint co-scheduling (docs/storage-model.md): the admission layer
  /// registers each application's projected raw DFS footprint so the RM's
  /// accounting shows how much of the storage budget the running mix has
  /// committed. Cleared automatically when the application unregisters or
  /// fails. No-op for unknown apps.
  void RegisterAppFootprint(ApplicationId app, int64_t bytes);
  /// Sum of registered footprints of live applications.
  int64_t committed_footprint_bytes() const {
    return committed_footprint_bytes_;
  }

  /// Per-application accounting; survives UnregisterApplication so
  /// finished tenants remain attributable. nullptr for unknown apps.
  const TenantStats* app_stats(ApplicationId app) const;
  /// Per-queue accounting (aggregated over the queue's applications).
  const TenantStats* queue_stats(const std::string& queue) const;
  /// All applications ever registered, ascending id.
  std::vector<ApplicationId> KnownApplications() const;

  /// Time-averaged Jain fairness index of per-application demand
  /// satisfaction (allocated dominant share / demanded dominant share),
  /// integrated over intervals where >= 2 applications had unmet or met
  /// demand and at least one was backlogged. 1.0 when no such interval
  /// occurred. This is the fairness number Fig.-style multi-tenant
  /// benches report. Maintained incrementally (O(1) per state change)
  /// with periodic exact rebuilds to bound floating-point drift.
  double TimeAveragedFairness() const;
  /// The instantaneous index over the current state (diagnostics/tests).
  /// Always computed from scratch — the reference the incremental
  /// aggregates are checked against in tests.
  double InstantFairness() const;

  /// Allocation passes executed so far, and the total host wall-clock
  /// time spent inside them (bench_scale's per-pass cost metric; the
  /// host clock never feeds back into the simulation).
  uint64_t allocation_passes() const { return passes_; }
  double allocation_pass_wall_s() const {
    return static_cast<double>(pass_wall_ns_) * 1e-9;
  }

  const YarnOptions& options() const { return options_; }
  Cluster* cluster() const { return cluster_; }

  /// Attaches an execution tracer (src/obs/tracer.h); the RM then
  /// records container lifecycle, allocation-pass, preemption, node-loss
  /// and app-failure span events. nullptr detaches.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  struct NodeState {
    int free_vcores = 0;
    double free_memory_mb = 0.0;
    bool alive = true;
    /// Decommission state machine: active (alive, !draining) ->
    /// draining (alive, draining) -> gone (!alive). Draining nodes keep
    /// their running containers but receive no new placements.
    bool draining = false;
    /// True while the node is in the placement index (open_nodes_ and
    /// the free-capacity multisets). Invariant: a node's free capacity
    /// is only mutated while unindexed, so the multiset entries always
    /// equal the current free values.
    bool indexed = false;
    /// Virtual time the draining node disappears (spot deadline).
    double drain_deadline = 0.0;
  };
  struct PendingRequest {
    ApplicationId app;
    ContainerRequest request;
    double submitted_at = 0.0;
  };
  struct AppState {
    std::string name;
    AmCallbacks* callbacks = nullptr;
    ContainerId am_container = kInvalidContainer;
    bool active = true;
    /// Last AmHeartbeat() time; < 0 until the first heartbeat (the app
    /// is then exempt from liveness monitoring).
    double last_heartbeat = -1.0;
    bool liveness_check_scheduled = false;
    // -- Incremental fairness cell (this app's contribution to the
    //    aggregate Jain sums; see FairnessTouch) --------------------------
    double fair_x = 0.0;
    double fair_x2 = 0.0;
    bool fair_included = false;
    bool fair_backlogged = false;
  };
  /// One queued request inside an allocation pass's slot table. A slot is
  /// consumed on successful placement or marked ineligible for the rest
  /// of the pass on failure; un-consumed slots return to the queue in
  /// their original order.
  struct PassSlot {
    PendingRequest req;
    bool consumed = false;
    bool eligible = true;
  };

  /// Matches pending requests against free capacity in the order chosen
  /// by the RmScheduler strategy; placement itself (locality preference,
  /// strict placement, blacklists) is strategy-independent. Dispatches
  /// to the incremental per-strategy engines, or to the legacy full-scan
  /// loop (allocation_mode == "full-scan" or a custom strategy).
  void AllocationPass();
  void ScheduleAllocationPass();

  /// Pre-refactor pass: re-builds the eligible candidate list and asks
  /// the strategy to re-score it for every single pick. O(pending²) per
  /// pass — kept as the equivalence baseline.
  void FullScanPass(std::vector<PassSlot>& slots, const RmTenancyView& view,
                    bool scan_placement, int* pass_allocations);
  /// FIFO in one forward sweep (provably pick-identical to FullScanPass
  /// with the fifo strategy).
  void FifoPass(std::vector<PassSlot>& slots, int* pass_allocations);
  /// Capacity (Key = queue name) / fair (Key = application id) pass over
  /// per-group candidate lists with a lazy min-heap of group heads.
  template <typename Key>
  void GroupedPass(std::vector<PassSlot>& slots, const RmTenancyView& view,
                   int* pass_allocations);
  /// Shared success bookkeeping: consume the slot, allocate on `chosen`,
  /// record waits, notify the AM asynchronously.
  void CommitAllocation(PassSlot& s, NodeId chosen, int* pass_allocations);

  /// Updates per-queue starvation episodes after an allocation pass and —
  /// when preemption is enabled and a queue's grace period has expired —
  /// runs one bounded preemption round on its behalf.
  void UpdateStarvation();
  /// Kills up to `budget` task containers of over-guarantee queues so
  /// `starved` can reach its guarantee; returns the number killed.
  int PreemptFor(const std::string& starved, int budget);
  /// True while `queue` is backlogged below its guaranteed share.
  bool QueueStarved(const std::string& queue) const;

  /// Indexed placement: preferred node first, then (unless strict) a
  /// rotating scan over the ordered open-node set, with O(1) rejection
  /// of requests no node can hold. Pick-identical to TryPlaceScan.
  NodeId TryPlace(const ContainerRequest& r);
  /// Seed placement logic: rotating scan over the whole fleet.
  NodeId TryPlaceScan(const ContainerRequest& r);

  bool Fits(const NodeState& ns, const ContainerRequest& r) const {
    return ns.alive && !ns.draining && ns.free_vcores >= r.vcores &&
           ns.free_memory_mb >= r.memory_mb;
  }

  /// Inserts `node` into the placement index iff it is alive and not
  /// draining (no-op otherwise / when already indexed).
  void IndexNode(NodeId node);
  /// Removes `node` from the placement index (no-op when not indexed).
  /// Must be called BEFORE mutating the node's free capacity or state.
  void UnindexNode(NodeId node);

  Container* AllocateOn(ApplicationId app, NodeId node, int vcores,
                        double memory_mb);

  /// Arms/re-arms the liveness timer for `app` to fire at `at`.
  void ScheduleLivenessCheck(ApplicationId app, double at);

  /// Frees one container's resources and accounting; reports the loss to
  /// the owning AM only when `notify` (dead masters are never called).
  void DropContainer(const Container& c, ContainerLossReason reason,
                     bool notify);

  TenantStats& StatsOf(ApplicationId app);
  TenantStats& QueueStatsOf(ApplicationId app);
  void AddPending(ApplicationId app, const ContainerRequest& r);
  void RemovePending(ApplicationId app, const ContainerRequest& r);
  /// Computes the instantaneous Jain index over demand-satisfaction
  /// ratios from scratch; returns false when the state is uncontended.
  bool ContendedFairness(double* jain) const;
  /// Integrates the fairness index up to Now() from the incremental
  /// aggregates; call before any state change that affects shares or
  /// demand.
  void AccrueFairness();
  /// Re-derives one application's fairness cell after its usage or
  /// demand changed and folds the delta into the aggregates. No-op for
  /// departed/inactive applications.
  void FairnessTouch(ApplicationId app);
  /// Removes an application's fairness contribution (app deactivation).
  void FairnessDrop(ApplicationId app);
  /// Recomputes every cell and the aggregates from scratch: on cluster
  /// capacity changes (all shares move) and periodically to bound
  /// floating-point drift of the incremental +=/-= sums.
  void FairnessRebuild();

  /// Releases `app`'s footprint registration (unregister / failure).
  void DropAppFootprint(ApplicationId app);

  Cluster* cluster_;
  YarnOptions options_;
  RmCounters counters_;
  std::vector<NodeState> nodes_;
  FlatHashMap<ApplicationId, AppState> apps_;
  FlatHashMap<ContainerId, Container> containers_;
  std::deque<PendingRequest> queue_;
  /// Projected raw DFS bytes per live application (footprint
  /// co-scheduling; see RegisterAppFootprint) and their running sum.
  FlatHashMap<ApplicationId, int64_t> app_footprint_;
  int64_t committed_footprint_bytes_ = 0;
  ApplicationId next_app_ = 1;
  ContainerId next_container_ = 1;
  bool pass_scheduled_ = false;
  /// Rotating start position for relaxed allocations: real YARN assigns
  /// containers as NodeManager heartbeats arrive, which spreads load
  /// across nodes instead of packing the lowest node ids.
  NodeId next_alloc_node_ = 0;

  // -- Placement index ----------------------------------------------------
  /// Alive, non-draining nodes with any free capacity, ordered by id so
  /// the rotating scan visits them exactly as the full fleet scan would.
  std::set<NodeId> open_nodes_;
  /// Free capacity of the indexed nodes; the maxima give O(1) "no node
  /// can hold this request" rejection.
  std::multiset<int> open_vcores_;
  std::multiset<double> open_memory_;

  // -- Multi-tenancy state ------------------------------------------------
  std::unique_ptr<RmScheduler> scheduler_;
  std::string scheduler_name_ = "fifo";
  std::map<std::string, RmQueueConfig> queue_configs_;
  FlatHashMap<ApplicationId, TenantStats> app_stats_;
  FlatHashMap<std::string, TenantStats> queue_stats_;
  /// One open starvation episode per queue: `since` < 0 when the queue is
  /// not starved; `wakeup_scheduled` dedupes the grace-expiry timer that
  /// re-triggers an allocation pass (and with it a preemption round).
  struct QueueStarvation {
    double since = -1.0;
    bool wakeup_scheduled = false;
  };
  std::map<std::string, QueueStarvation> starvation_;
  AppFailureListener app_failure_listener_;
  int total_vcores_ = 0;
  double total_memory_mb_ = 0.0;
  double fairness_integral_ = 0.0;
  double fairness_time_ = 0.0;
  double fairness_last_ = 0.0;
  /// Incremental fairness aggregates over the active applications' cells:
  /// Jain = (Σx)² / (n·Σx²), contended iff n >= 2 and someone is
  /// backlogged (see docs/scaling.md).
  struct FairnessAgg {
    double sum_x = 0.0;
    double sum_x2 = 0.0;
    int n = 0;
    int backlogged = 0;
  };
  FairnessAgg fairness_agg_;
  uint64_t fairness_touches_ = 0;
  uint64_t passes_ = 0;
  uint64_t pass_wall_ns_ = 0;
  Tracer* tracer_ = nullptr;
};

}  // namespace hiway

#endif  // HIWAY_YARN_YARN_H_
