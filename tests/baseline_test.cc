// Tests for the comparator baselines: the Tez-like DAG engine and the
// Galaxy-CloudMan-like engine.

#include <gtest/gtest.h>

#include "src/baseline/cloudman.h"
#include "src/baseline/tez_am.h"
#include "src/common/strings.h"
#include "src/lang/cuneiform.h"
#include "src/tools/standard_tools.h"

namespace hiway {
namespace {

TaskSpec MakeTask(TaskId id, std::string tool, std::vector<std::string> in,
                  std::string out) {
  TaskSpec t;
  t.id = id;
  t.signature = tool;
  t.tool = std::move(tool);
  t.input_files = std::move(in);
  t.outputs.push_back(OutputSpec{"out", std::move(out), {}, false});
  return t;
}

// ------------------------------------------------------------------- Tez --

struct TezRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Dfs> dfs;
  std::unique_ptr<ResourceManager> rm;
  ToolRegistry tools;

  explicit TezRig(int nodes) {
    NodeSpec node;
    node.cores = 4;
    node.memory_mb = 8192;
    cluster = std::make_unique<Cluster>(
        &engine, &net, ClusterSpec::Uniform(nodes, node, 1000.0));
    dfs = std::make_unique<Dfs>(cluster.get(), DfsOptions{});
    rm = std::make_unique<ResourceManager>(cluster.get(), YarnOptions{});
    RegisterStandardTools(&tools);
  }
};

TEST(TezAmTest, RunsStaticDag) {
  TezRig rig(3);
  ASSERT_TRUE(rig.dfs->IngestFile("/in", 32 << 20).ok());
  std::vector<TaskSpec> tasks = {
      MakeTask(1, "bowtie2", {"/in"}, "/a.sam"),
      MakeTask(2, "samtools-sort", {"/a.sam"}, "/a.bam"),
  };
  StaticWorkflowSource source("dag", tasks);
  TezAm am(rig.cluster.get(), rig.rm.get(), rig.dfs.get(), &rig.tools,
           TezOptions{});
  ASSERT_TRUE(am.Submit(&source).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 2);
  EXPECT_TRUE(rig.dfs->Exists("/a.bam"));
}

TEST(TezAmTest, RejectsIterativeSources) {
  TezRig rig(2);
  auto iterative = CuneiformSource::Parse(
      "deftask t( o : i ) in 'bowtie2'; target t( i: '/x' );");
  ASSERT_TRUE(iterative.ok());
  TezAm am(rig.cluster.get(), rig.rm.get(), rig.dfs.get(), &rig.tools,
           TezOptions{});
  Status st = am.Submit(iterative->get());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("static"), std::string::npos);
}

TEST(TezAmTest, WrapOverheadSlowsEveryVertex) {
  auto run_with_overhead = [](double wrap_s) -> double {
    TezRig rig(2);
    EXPECT_TRUE(rig.dfs->IngestFile("/in", 8 << 20).ok());
    std::vector<TaskSpec> tasks = {
        MakeTask(1, "bowtie2", {"/in"}, "/a"),
        MakeTask(2, "samtools-sort", {"/a"}, "/b"),
        MakeTask(3, "varscan", {"/b"}, "/c"),
    };
    StaticWorkflowSource source("chain", tasks);
    TezOptions options;
    options.wrap_overhead_s = wrap_s;
    TezAm am(rig.cluster.get(), rig.rm.get(), rig.dfs.get(), &rig.tools,
             options);
    EXPECT_TRUE(am.Submit(&source).ok());
    auto report = am.RunToCompletion();
    EXPECT_TRUE(report.ok() && report->status.ok());
    return report->Makespan();
  };
  double fast = run_with_overhead(0.0);
  double slow = run_with_overhead(10.0);
  EXPECT_NEAR(slow - fast, 30.0, 2.0);  // 3 sequential vertices x 10 s
}

TEST(TezAmTest, DeadlocksOnMissingInputs) {
  TezRig rig(2);
  std::vector<TaskSpec> tasks = {MakeTask(1, "bowtie2", {"/ghost"}, "/a")};
  StaticWorkflowSource source("dag", tasks);
  TezAm am(rig.cluster.get(), rig.rm.get(), rig.dfs.get(), &rig.tools,
           TezOptions{});
  ASSERT_TRUE(am.Submit(&source).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.IsFailedPrecondition());
}

// -------------------------------------------------------------- CloudMan --

struct CloudManRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  ToolRegistry tools;

  explicit CloudManRig(int nodes, double ebs_mbps = 160.0) {
    NodeSpec node;
    node.cores = 8;
    node.memory_mb = 15360;
    ClusterSpec spec = ClusterSpec::Uniform(nodes, node, 1250.0);
    spec.ebs_bw_mbps = ebs_mbps;
    cluster = std::make_unique<Cluster>(&engine, &net, spec);
    RegisterStandardTools(&tools);
  }
};

TEST(CloudManTest, RunsWorkflowOverSharedVolume) {
  CloudManRig rig(2);
  CloudManEngine engine(rig.cluster.get(), &rig.tools, CloudManOptions{});
  engine.StageInput("/in", 64 << 20);
  std::vector<TaskSpec> tasks = {
      MakeTask(1, "trimmomatic", {"/in"}, "/trimmed"),
      MakeTask(2, "tophat2", {"/trimmed"}, "/hits"),
  };
  StaticWorkflowSource source("mini", tasks);
  ASSERT_TRUE(engine.Submit(&source).ok());
  auto report = engine.RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 2);
  EXPECT_TRUE(engine.volume()->Exists("/hits"));
  // All that data crossed the EBS volume.
  EXPECT_GT(rig.net.Stats(rig.cluster->ebs()).peak_rate, 0.0);
}

TEST(CloudManTest, EnforcesTwentyNodeLimit) {
  CloudManRig rig(21);
  CloudManEngine engine(rig.cluster.get(), &rig.tools, CloudManOptions{});
  std::vector<TaskSpec> tasks = {MakeTask(1, "fastqc", {}, "/r")};
  StaticWorkflowSource source("big", tasks);
  Status st = engine.Submit(&source);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("20"), std::string::npos);
}

TEST(CloudManTest, SlotsPerNodeLimitConcurrency) {
  CloudManRig rig(1);
  CloudManOptions options;
  options.slots_per_node = 1;
  options.dispatch_overhead_s = 0.0;
  CloudManEngine engine(rig.cluster.get(), &rig.tools, options);
  engine.StageInput("/in", 8 << 20);
  // Two independent tasks on a single 1-slot node must serialise.
  std::vector<TaskSpec> tasks = {
      MakeTask(1, "fastqc", {"/in"}, "/r1"),
      MakeTask(2, "fastqc", {"/in"}, "/r2"),
  };
  StaticWorkflowSource source("pair", tasks);
  ASSERT_TRUE(engine.Submit(&source).ok());
  auto report = engine.RunToCompletion();
  ASSERT_TRUE(report.ok() && report->status.ok());
  double serial = report->Makespan();

  CloudManRig rig2(1);
  CloudManOptions options2;
  options2.slots_per_node = 2;
  options2.dispatch_overhead_s = 0.0;
  CloudManEngine engine2(rig2.cluster.get(), &rig2.tools, options2);
  engine2.StageInput("/in", 8 << 20);
  StaticWorkflowSource source2("pair", tasks);
  ASSERT_TRUE(engine2.Submit(&source2).ok());
  auto report2 = engine2.RunToCompletion();
  ASSERT_TRUE(report2.ok() && report2->status.ok());
  EXPECT_LT(report2->Makespan(), serial * 0.75);
}

TEST(CloudManTest, DeadlocksOnMissingInput) {
  CloudManRig rig(2);
  CloudManEngine engine(rig.cluster.get(), &rig.tools, CloudManOptions{});
  std::vector<TaskSpec> tasks = {MakeTask(1, "fastqc", {"/ghost"}, "/r")};
  StaticWorkflowSource source("bad", tasks);
  ASSERT_TRUE(engine.Submit(&source).ok());
  auto report = engine.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.IsFailedPrecondition());
}

TEST(CloudManTest, TransientStorageUsesLocalDisksAndSwitch) {
  // Footnote-4 mode: no EBS volume needed; scratch stays on local SSDs
  // and cross-node consumption crosses the switch.
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 8;
  Cluster cluster(&engine, &net,
                  ClusterSpec::Uniform(2, node, 1250.0));  // no EBS
  ToolRegistry tools;
  RegisterStandardTools(&tools);
  CloudManOptions options;
  options.transient_storage = true;
  options.dispatch_overhead_s = 0.0;
  CloudManEngine cm(&cluster, &tools, options);
  cm.StageInput("/in", 64 << 20);
  std::vector<TaskSpec> tasks = {
      MakeTask(1, "trimmomatic", {"/in"}, "/trimmed"),
      MakeTask(2, "tophat2", {"/trimmed"}, "/hits"),
  };
  StaticWorkflowSource source("mini", tasks);
  ASSERT_TRUE(cm.Submit(&source).ok());
  auto report = cm.RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_TRUE(cm.StorageHas("/hits"));
  EXPECT_EQ(cm.volume(), nullptr);
}

TEST(CloudManTest, TransientStorageFasterThanEbsForScratchHeavyJobs) {
  auto run = [](bool transient) -> double {
    CloudManRig rig(2, /*ebs_mbps=*/40.0);
    CloudManOptions options;
    options.transient_storage = transient;
    options.dispatch_overhead_s = 0.0;
    CloudManEngine cm(rig.cluster.get(), &rig.tools, options);
    cm.StageInput("/in", 256 << 20);
    std::vector<TaskSpec> tasks = {MakeTask(1, "tophat2", {"/in"}, "/h")};
    StaticWorkflowSource source("th", tasks);
    EXPECT_TRUE(cm.Submit(&source).ok());
    auto report = cm.RunToCompletion();
    EXPECT_TRUE(report.ok() && report->status.ok());
    return report->Makespan();
  };
  EXPECT_LT(run(true), 0.9 * run(false));
}

TEST(CloudManTest, SharedVolumeSlowerThanLocalDiskForScratchHeavyTools) {
  // The Fig. 8 mechanism in miniature: the same TopHat-like task is
  // noticeably slower when its scratch I/O crosses a constrained shared
  // volume instead of the local SSD.
  CloudManRig rig(1, /*ebs_mbps=*/40.0);
  CloudManOptions options;
  options.dispatch_overhead_s = 0.0;
  CloudManEngine cloudman(rig.cluster.get(), &rig.tools, options);
  cloudman.StageInput("/in", 256 << 20);
  std::vector<TaskSpec> tasks = {MakeTask(1, "tophat2", {"/in"}, "/hits")};
  StaticWorkflowSource source("th", tasks);
  ASSERT_TRUE(cloudman.Submit(&source).ok());
  auto cm_report = cloudman.RunToCompletion();
  ASSERT_TRUE(cm_report.ok() && cm_report->status.ok());

  // Same task through the DFS adapter (local scratch).
  SimEngine engine2;
  FlowNetwork net2(&engine2);
  NodeSpec node;
  node.cores = 8;
  Cluster cluster2(&engine2, &net2, ClusterSpec::Uniform(1, node, 1250.0));
  Dfs dfs(&cluster2, DfsOptions{});
  ASSERT_TRUE(dfs.IngestFile("/in", 256 << 20).ok());
  ToolRegistry tools2;
  RegisterStandardTools(&tools2);
  DfsStorageAdapter storage(&dfs);
  TaskExecutor executor(&cluster2, &tools2, &storage);
  double local_makespan = 0.0;
  executor.Execute(tasks[0], 0, 8, [&](TaskAttemptOutcome o) {
    ASSERT_TRUE(o.result.status.ok());
    local_makespan = o.result.Makespan();
  });
  engine2.Run();
  EXPECT_GT(cm_report->Makespan(), 1.2 * local_makespan);
}

}  // namespace
}  // namespace hiway
