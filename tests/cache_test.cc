// Tests for the cross-submission data cache (docs/data-cache.md): the
// per-node staging cache (LRU under a byte budget, pinned entries,
// node-loss invalidation), the cluster-wide content-addressed result
// cache (seal-after-durable publishing, tenant isolation, provenance
// resolution, staleness eviction, persistent index, verification), a
// randomised key-collision/isolation property suite, and end-to-end
// warm-submission runs through the WorkflowService.

#include "src/cache/result_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cache/staging_cache.h"
#include "src/common/random.h"
#include "src/common/strings.h"
#include "src/core/provenance.h"
#include "src/infra/karamel.h"
#include "src/provdb/provdb.h"
#include "src/service/workflow_service.h"
#include "src/sim/fault_injector.h"

namespace hiway {
namespace {

// ---------------------------------------------------------------------
// Staging cache (pure unit tests; no deployment needed).
// ---------------------------------------------------------------------

TEST(StagingCacheTest, HitRequiresMatchingContentAndNode) {
  StagingCache cache;
  cache.InsertPinned(1, "/in/a", 0xabc, 100);
  cache.Unpin(1, "/in/a");

  EXPECT_EQ(cache.CachedBytes("/in/a", 0xabc, 1), 100);
  EXPECT_EQ(cache.CachedBytes("/in/a", 0xdef, 1), 0);  // content drifted
  EXPECT_EQ(cache.CachedBytes("/in/a", 0xabc, 2), 0);  // other node

  EXPECT_TRUE(cache.HitAndPin(1, "/in/a", 0xabc));
  cache.Unpin(1, "/in/a");
  EXPECT_FALSE(cache.HitAndPin(1, "/in/a", 0xdef));  // stale = miss
  EXPECT_FALSE(cache.HitAndPin(2, "/in/a", 0xabc));

  StagingCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.bytes_served, 100);
}

TEST(StagingCacheTest, LruEvictsUnpinnedEntriesUnderBudget) {
  StagingCache cache(StagingCacheOptions{.node_budget_bytes = 100});
  for (int i = 0; i < 3; ++i) {
    std::string path = StrFormat("/in/f%d", i);
    cache.InsertPinned(1, path, 0x100 + i, 30);
    cache.Unpin(1, path);
  }
  EXPECT_EQ(cache.NodeBytes(1), 90);

  // Touch f0 so f1 becomes the LRU victim.
  EXPECT_TRUE(cache.HitAndPin(1, "/in/f0", 0x100));
  cache.Unpin(1, "/in/f0");

  cache.InsertPinned(1, "/in/f3", 0x103, 30);
  cache.Unpin(1, "/in/f3");
  EXPECT_LE(cache.NodeBytes(1), 100);
  EXPECT_EQ(cache.CachedBytes("/in/f1", 0x101, 1), 0);   // evicted
  EXPECT_EQ(cache.CachedBytes("/in/f0", 0x100, 1), 30);  // kept (recent)
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(StagingCacheTest, SchedulerScansDoNotPerturbRecency) {
  StagingCache cache(StagingCacheOptions{.node_budget_bytes = 100});
  cache.InsertPinned(1, "/in/old", 0x1, 50);
  cache.Unpin(1, "/in/old");
  cache.InsertPinned(1, "/in/new", 0x2, 50);
  cache.Unpin(1, "/in/new");
  // A placement scan reads the old entry; that must NOT refresh it.
  EXPECT_EQ(cache.CachedBytes("/in/old", 0x1, 1), 50);
  cache.InsertPinned(1, "/in/next", 0x3, 50);
  cache.Unpin(1, "/in/next");
  EXPECT_EQ(cache.CachedBytes("/in/old", 0x1, 1), 0);   // still the LRU
  EXPECT_EQ(cache.CachedBytes("/in/new", 0x2, 1), 50);
}

TEST(StagingCacheTest, PinnedEntriesNeverEvictedAndOverflowRejected) {
  StagingCache cache(StagingCacheOptions{.node_budget_bytes = 100});
  cache.InsertPinned(1, "/in/a", 0x1, 80);  // pinned by a running attempt
  cache.InsertPinned(1, "/in/b", 0x2, 80);  // cannot fit: a is pinned
  EXPECT_EQ(cache.CachedBytes("/in/a", 0x1, 1), 80);
  EXPECT_EQ(cache.CachedBytes("/in/b", 0x2, 1), 0);
  EXPECT_EQ(cache.stats().rejected, 1);
  EXPECT_EQ(cache.stats().evictions, 0);

  cache.Unpin(1, "/in/a");
  cache.InsertPinned(1, "/in/b", 0x2, 80);  // now a is evictable
  EXPECT_EQ(cache.CachedBytes("/in/b", 0x2, 1), 80);
  EXPECT_EQ(cache.CachedBytes("/in/a", 0x1, 1), 0);
}

TEST(StagingCacheTest, InvalidateNodeDropsOnlyThatNode) {
  StagingCache cache;
  cache.InsertPinned(1, "/in/a", 0x1, 10);
  cache.Unpin(1, "/in/a");
  cache.InsertPinned(2, "/in/a", 0x1, 10);
  cache.Unpin(2, "/in/a");
  EXPECT_EQ(cache.TotalBytes(), 20);

  cache.InvalidateNode(1);
  EXPECT_EQ(cache.NodeBytes(1), 0);
  EXPECT_EQ(cache.NodeBytes(2), 10);
  EXPECT_FALSE(cache.HitAndPin(1, "/in/a", 0x1));
  EXPECT_TRUE(cache.HitAndPin(2, "/in/a", 0x1));
  EXPECT_EQ(cache.stats().invalidated, 1);
}

// ---------------------------------------------------------------------
// Result cache unit tests (a deployment supplies DFS + provenance).
// ---------------------------------------------------------------------

Result<std::unique_ptr<Deployment>> BareDeployment(
    const ChefAttributes& extra = {}) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("cluster/cores", "4");
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  return karamel.Converge();
}

TaskSpec MakeSpec(TaskId id, const std::string& signature,
                  std::vector<std::string> inputs,
                  std::vector<std::string> outputs) {
  TaskSpec spec;
  spec.id = id;
  spec.signature = signature;
  spec.command = signature + " --run";
  spec.input_files = std::move(inputs);
  for (const std::string& path : outputs) {
    OutputSpec out;
    out.param = StrFormat("out%zu", spec.outputs.size());
    out.path = path;
    spec.outputs.push_back(std::move(out));
  }
  return spec;
}

/// Simulates a completed attempt: writes the outputs into DFS, records a
/// successful task-end in the run's provenance shard, and publishes.
Status PublishTask(Deployment* d, ResultCache* cache, const TaskSpec& spec,
                   const std::string& run_id, double duration = 30.0,
                   int64_t output_bytes = 1024) {
  TaskResult result;
  result.id = spec.id;
  result.signature = spec.signature;
  result.node = 1;
  result.started_at = 0.0;
  result.finished_at = duration;
  for (const OutputSpec& out : spec.outputs) {
    if (out.is_value) continue;
    if (!d->dfs->Exists(out.path)) {
      HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(out.path, output_bytes));
    }
    result.produced_files.emplace_back(out.path, output_bytes);
  }
  ProvenanceShard* shard = d->provenance->shard(run_id);
  if (shard == nullptr) return Status::NotFound("no shard: " + run_id);
  shard->RecordTaskEnd(result, "worker-1");
  return cache->Publish(spec, result, run_id, "worker-1");
}

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = BareDeployment();
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    d_ = std::move(*d);
    ASSERT_TRUE(d_->dfs->IngestFile("/in/reads.fq", 4096).ok());
    ASSERT_TRUE(d_->dfs->IngestFile("/in/ref.fa", 2048).ok());
    run_ = d_->provenance->BeginWorkflow("producer", 0.0);
    dir_ = std::filesystem::temp_directory_path() /
           StrFormat("cache-test-%d-%s", getpid(),
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string IndexPath() const { return (dir_ / "cache.db").string(); }

  std::unique_ptr<Deployment> d_;
  std::string run_;
  std::filesystem::path dir_;
};

TEST_F(ResultCacheTest, PublishThenHitRoundTrip) {
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  cache.BindRun(run_, "alice");
  TaskSpec spec =
      MakeSpec(1, "align", {"/in/reads.fq", "/in/ref.fa"}, {"/out/bam"});
  ASSERT_TRUE(PublishTask(d_.get(), &cache, spec, run_, 42.0).ok());
  EXPECT_EQ(cache.size(), 1u);

  auto hit = cache.Lookup(spec, "alice");
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->signature, "align");
  EXPECT_EQ(hit->run_id, run_);
  EXPECT_DOUBLE_EQ(hit->duration, 42.0);
  ASSERT_EQ(hit->outputs.size(), 1u);
  EXPECT_EQ(hit->outputs[0].path, "/out/bam");
  auto stat = d_->dfs->Stat("/out/bam");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(hit->outputs[0].size_bytes, stat->size_bytes);
  EXPECT_EQ(hit->outputs[0].content_id, stat->content_id);

  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.seals, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_DOUBLE_EQ(stats.saved_compute_s, 42.0);
}

TEST_F(ResultCacheTest, ChangedInputContentMisses) {
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  cache.BindRun(run_, "alice");
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  ASSERT_TRUE(PublishTask(d_.get(), &cache, spec, run_).ok());
  ASSERT_TRUE(cache.Lookup(spec, "alice").ok());

  // Re-ingesting the input bumps its content fingerprint: the key no
  // longer matches, exactly like re-running with one changed file.
  ASSERT_TRUE(d_->dfs->Delete("/in/reads.fq").ok());
  ASSERT_TRUE(d_->dfs->IngestFile("/in/reads.fq", 4096).ok());
  auto miss = cache.Lookup(spec, "alice");
  EXPECT_TRUE(miss.status().IsNotFound());
}

TEST_F(ResultCacheTest, PublishRefusesNonDurableOutputs) {
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  cache.BindRun(run_, "alice");
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/missing"});
  // A crashed AM's outputs never reached DFS: Publish must refuse even
  // though the caller claims success.
  TaskResult result;
  result.id = spec.id;
  result.signature = spec.signature;
  result.node = 1;
  result.finished_at = 10.0;
  Status st = cache.Publish(spec, result, run_, "worker-1");
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected_publishes, 1);
  EXPECT_EQ(cache.AuditAgainstDfs(), 0);
}

TEST_F(ResultCacheTest, CrossTenantLookupDenied) {
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  cache.BindRun(run_, "alice");
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  ASSERT_TRUE(PublishTask(d_.get(), &cache, spec, run_).ok());

  auto denied = cache.Lookup(spec, "bob");
  EXPECT_TRUE(denied.status().IsNotFound());
  EXPECT_EQ(cache.stats().tenant_denied, 1);
  EXPECT_EQ(cache.stats().hits, 0);
  // The rightful owner still hits.
  EXPECT_TRUE(cache.Lookup(spec, "alice").ok());
}

TEST_F(ResultCacheTest, EntryWithoutProvenanceHistoryIsAMiss) {
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  ASSERT_TRUE(d_->dfs->IngestFile("/out/bam", 1024).ok());
  TaskResult result;
  result.id = spec.id;
  result.signature = spec.signature;
  result.finished_at = 10.0;
  result.produced_files.emplace_back("/out/bam", 1024);
  // Sealed under a run no provenance shard vouches for (e.g. wiped
  // history): conservatively a miss.
  ASSERT_TRUE(cache.Publish(spec, result, "ghost-run", "worker-1").ok());
  auto miss = cache.Lookup(spec, "default");
  EXPECT_TRUE(miss.status().IsNotFound());
  EXPECT_EQ(cache.stats().unresolved, 1);
}

TEST_F(ResultCacheTest, StaleOutputsEvictOnLookup) {
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  cache.BindRun(run_, "alice");
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  ASSERT_TRUE(PublishTask(d_.get(), &cache, spec, run_).ok());

  // The output is deleted underneath the cache: the entry dangles.
  ASSERT_TRUE(d_->dfs->Delete("/out/bam").ok());
  EXPECT_EQ(cache.AuditAgainstDfs(), 1);
  // Rewritten at the same path (content drift): no longer dangling, but
  // stale — the first lookup evicts it instead of serving old bytes.
  ASSERT_TRUE(d_->dfs->IngestFile("/out/bam", 1024).ok());
  EXPECT_EQ(cache.AuditAgainstDfs(), 0);
  auto miss = cache.Lookup(spec, "alice");
  EXPECT_TRUE(miss.status().IsNotFound());
  EXPECT_EQ(cache.stats().stale_evictions, 1);
  EXPECT_EQ(cache.size(), 0u);  // evicted, not retried forever
}

TEST_F(ResultCacheTest, CapacityBoundEvictsLeastRecentlyUsed) {
  ResultCacheOptions options;
  options.max_entries = 2;
  ResultCache cache(d_->dfs.get(), d_->provenance.get(), options);
  cache.BindRun(run_, "alice");
  std::vector<TaskSpec> specs;
  for (int i = 0; i < 3; ++i) {
    specs.push_back(MakeSpec(i + 1, StrFormat("tool%d", i),
                             {"/in/reads.fq"},
                             {StrFormat("/out/f%d", i)}));
  }
  ASSERT_TRUE(PublishTask(d_.get(), &cache, specs[0], run_).ok());
  ASSERT_TRUE(PublishTask(d_.get(), &cache, specs[1], run_).ok());
  ASSERT_TRUE(cache.Lookup(specs[0], "alice").ok());  // refresh entry 0
  ASSERT_TRUE(PublishTask(d_.get(), &cache, specs[2], run_).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().capacity_evictions, 1);
  EXPECT_TRUE(cache.Lookup(specs[0], "alice").ok());  // kept (recent)
  EXPECT_TRUE(cache.Lookup(specs[1], "alice").status().IsNotFound());
}

TEST_F(ResultCacheTest, PersistentIndexSurvivesRestart) {
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  {
    ResultCache cache(d_->dfs.get(), d_->provenance.get());
    ASSERT_TRUE(cache.OpenIndex(IndexPath()).ok());
    cache.BindRun(run_, "alice");
    ASSERT_TRUE(PublishTask(d_.get(), &cache, spec, run_, 42.0).ok());
  }
  // A fresh cache (service restart) restores the sealed entry from the
  // index; the provenance shards retained by the manager still vouch.
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  ASSERT_TRUE(cache.OpenIndex(IndexPath()).ok());
  EXPECT_EQ(cache.stats().restored, 1);
  EXPECT_EQ(cache.TenantOf(run_), "alice");
  auto hit = cache.Lookup(spec, "alice");
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_DOUBLE_EQ(hit->duration, 42.0);
  // Isolation survives the restart too.
  EXPECT_TRUE(cache.Lookup(spec, "bob").status().IsNotFound());
}

TEST_F(ResultCacheTest, VerificationMismatchFailsLoudlyAndEvicts) {
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  {
    ResultCache cache(d_->dfs.get(), d_->provenance.get());
    ASSERT_TRUE(cache.OpenIndex(IndexPath()).ok());
    cache.BindRun(run_, "alice");
    ASSERT_TRUE(PublishTask(d_.get(), &cache, spec, run_).ok());
  }
  // Corrupt the persisted outputs digest — the stand-in for bit rot that
  // left sizes intact (which OutputsFresh alone cannot see).
  {
    auto db = ProvDb::Open(IndexPath());
    ASSERT_TRUE(db.ok());
    auto rows = (*db)->Scan("entry/");
    ASSERT_EQ(rows.size(), 1u);
    auto obj = Json::Parse(rows[0].second);
    ASSERT_TRUE(obj.ok());
    obj->Set("digest", std::string("deadbeefdeadbeef"));
    ASSERT_TRUE((*db)->Put(rows[0].first, obj->Dump()).ok());
  }
  ResultCacheOptions options;
  options.verify = true;
  options.verify_rate = 1.0;
  ResultCache cache(d_->dfs.get(), d_->provenance.get(), options);
  ASSERT_TRUE(cache.OpenIndex(IndexPath()).ok());
  auto st = cache.Lookup(spec, "alice");
  EXPECT_TRUE(st.status().IsIoError()) << st.status().ToString();
  EXPECT_EQ(cache.stats().verify_mismatches, 1);
  EXPECT_EQ(cache.size(), 0u);  // corrupt entry evicted
  // The recompute path is clear: the next lookup is an ordinary miss.
  EXPECT_TRUE(cache.Lookup(spec, "alice").status().IsNotFound());
}

TEST_F(ResultCacheTest, TransientReadFaultDowngradesVerifiedHit) {
  ResultCacheOptions options;
  options.verify = true;
  options.verify_rate = 1.0;
  ResultCache cache(d_->dfs.get(), d_->provenance.get(), options);
  cache.BindRun(run_, "alice");
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  ASSERT_TRUE(PublishTask(d_.get(), &cache, spec, run_).ok());

  bool faulty = true;
  cache.SetVerifyReadHook(
      [&faulty](const std::string&, NodeId) { return faulty; });
  auto degraded = cache.Lookup(spec, "alice");
  EXPECT_TRUE(degraded.status().IsNotFound());
  EXPECT_EQ(cache.stats().verify_transients, 1);
  EXPECT_EQ(cache.stats().verify_mismatches, 0);
  EXPECT_EQ(cache.size(), 1u);  // the entry itself is not suspect

  faulty = false;
  EXPECT_TRUE(cache.Lookup(spec, "alice").ok());  // healthy again
}

// The service wires the fault injector's hdfs-error scenario into the
// cache's verification reads (satellite of docs/failure-model.md).
TEST_F(ResultCacheTest, ServiceWiresInjectorIntoVerification) {
  auto d = BareDeployment({{"hiway/cache_results", "on"},
                           {"hiway/cache_verify", "on"},
                           {"hiway/cache_verify_rate", "1.0"}});
  ASSERT_TRUE(d.ok());
  ASSERT_NE((*d)->result_cache, nullptr);
  ASSERT_TRUE((*d)->dfs->IngestFile("/in/reads.fq", 4096).ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  FaultInjector injector(&(*d)->engine);
  (*service)->InstallFaultHandlers(&injector);
  ASSERT_TRUE(injector.ArmSpec("hdfs-error:rate=1").ok());

  ResultCache* cache = (*d)->result_cache.get();
  std::string run = (*d)->provenance->BeginWorkflow("producer", 0.0);
  cache->BindRun(run, "alice");
  TaskSpec spec = MakeSpec(1, "align", {"/in/reads.fq"}, {"/out/bam"});
  ASSERT_TRUE(PublishTask(d->get(), cache, spec, run).ok());
  auto degraded = cache->Lookup(spec, "alice");
  EXPECT_TRUE(degraded.status().IsNotFound());
  EXPECT_EQ(cache->stats().verify_transients, 1);
}

// ---------------------------------------------------------------------
// Randomised property suite: key collision / isolation.
// ---------------------------------------------------------------------

// Random (signature, inputs, params) combinations: every hit must return
// the exact outputs published for that spec (byte-identity via size +
// content fingerprint), never another spec's entry, and never another
// tenant's entry.
TEST_F(ResultCacheTest, RandomisedKeysNeverCollideAcrossSpecsOrTenants) {
  ResultCache cache(d_->dfs.get(), d_->provenance.get());
  std::string run_a = d_->provenance->BeginWorkflow("tenant-a", 0.0);
  std::string run_b = d_->provenance->BeginWorkflow("tenant-b", 0.0);
  cache.BindRun(run_a, "alice");
  cache.BindRun(run_b, "bob");

  Rng rng(20170321);
  std::vector<std::string> pool;
  for (int i = 0; i < 6; ++i) {
    std::string path = StrFormat("/in/pool%d", i);
    ASSERT_TRUE(
        d_->dfs->IngestFile(path, 512 + static_cast<int>(rng.UniformInt(4096))).ok());
    pool.push_back(path);
  }

  struct Published {
    TaskSpec spec;
    std::string tenant;
    int64_t size = 0;
    uint64_t content = 0;
  };
  std::vector<Published> published;
  for (int i = 0; i < 40; ++i) {
    Published p;
    p.tenant = (static_cast<int>(rng.UniformInt(2)) == 0) ? "alice" : "bob";
    std::vector<std::string> inputs;
    for (const std::string& path : pool) {
      if (static_cast<int>(rng.UniformInt(2)) == 0) inputs.push_back(path);
    }
    p.spec = MakeSpec(100 + i, StrFormat("tool%d", static_cast<int>(rng.UniformInt(8))),
                      std::move(inputs), {StrFormat("/out/p%d", i)});
    p.spec.params["shard"] = StrFormat("%d", static_cast<int>(rng.UniformInt(4)));
    const std::string& run = p.tenant == "alice" ? run_a : run_b;
    ASSERT_TRUE(PublishTask(d_.get(), &cache, p.spec, run, 10.0,
                            256 + static_cast<int>(rng.UniformInt(2048)))
                    .ok());
    auto stat = d_->dfs->Stat(p.spec.outputs[0].path);
    ASSERT_TRUE(stat.ok());
    p.size = stat->size_bytes;
    p.content = stat->content_id;
    published.push_back(std::move(p));
  }

  // Distinct (signature, inputs, params, outputs) combinations map to
  // distinct keys — a collision would alias two entries.
  std::set<std::string> keys;
  for (const Published& p : published) {
    auto key = cache.KeyFor(p.spec);
    ASSERT_TRUE(key.ok());
    keys.insert(*key);
  }
  EXPECT_EQ(keys.size(), published.size());

  for (const Published& p : published) {
    // Owner: hit, byte-identical to the recompute it replaces.
    auto hit = cache.Lookup(p.spec, p.tenant);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    EXPECT_EQ(hit->signature, p.spec.signature);
    ASSERT_EQ(hit->outputs.size(), 1u);
    EXPECT_EQ(hit->outputs[0].path, p.spec.outputs[0].path);
    EXPECT_EQ(hit->outputs[0].size_bytes, p.size);
    EXPECT_EQ(hit->outputs[0].content_id, p.content);
    EXPECT_EQ(hit->run_id, p.tenant == "alice" ? run_a : run_b);
    // Twin tenant: never a hit, never a leak.
    const std::string twin = p.tenant == "alice" ? "bob" : "alice";
    auto denied = cache.Lookup(p.spec, twin);
    EXPECT_TRUE(denied.status().IsNotFound());
  }
  EXPECT_EQ(cache.stats().tenant_denied,
            static_cast<int64_t>(published.size()));
}

// ---------------------------------------------------------------------
// End-to-end: warm submissions through the WorkflowService.
// ---------------------------------------------------------------------

Result<std::unique_ptr<Deployment>> SnvDeployment(
    const ChefAttributes& extra = {}) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("snv/chunks", "6");
  karamel.SetAttribute("snv/chunk_mb", "32");
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  return karamel.Converge();
}

std::map<std::string, int64_t> DfsSnapshot(Dfs* dfs) {
  std::map<std::string, int64_t> files;
  for (const std::string& path : dfs->ListFiles()) {
    auto info = dfs->Stat(path);
    if (info.ok()) files[path] = info->size_bytes;
  }
  return files;
}

TEST(CacheServiceTest, WarmSubmissionIsServedFromTheCache) {
  auto d = SnvDeployment({{"hiway/cache_results", "on"}});
  ASSERT_TRUE(d.ok());
  ASSERT_NE((*d)->result_cache, nullptr);
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());

  auto cold = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* cold_rec = (*service)->record(*cold);
  ASSERT_NE(cold_rec, nullptr);
  ASSERT_EQ(cold_rec->state, SubmissionState::kSucceeded);
  EXPECT_EQ(cold_rec->report.tasks_cached, 0);
  std::map<std::string, int64_t> cold_files = DfsSnapshot((*d)->dfs.get());

  auto warm = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* warm_rec = (*service)->record(*warm);
  ASSERT_NE(warm_rec, nullptr);
  ASSERT_EQ(warm_rec->state, SubmissionState::kSucceeded);

  // Nothing changed, so the whole workflow is served without containers.
  EXPECT_EQ(warm_rec->report.tasks_cached,
            warm_rec->report.tasks_completed);
  EXPECT_EQ(warm_rec->report.tasks_completed,
            cold_rec->report.tasks_completed);
  EXPECT_LT(warm_rec->report.Makespan(), cold_rec->report.Makespan());
  // The warm run's outputs are the cold run's, byte for byte.
  EXPECT_EQ(DfsSnapshot((*d)->dfs.get()), cold_files);
  ResultCacheStats stats = (*d)->result_cache->stats();
  EXPECT_EQ(stats.hits, warm_rec->report.tasks_cached);
  EXPECT_EQ((*d)->result_cache->AuditAgainstDfs(), 0);
}

TEST(CacheServiceTest, StagingCacheCutsWarmRunTransfers) {
  auto d = SnvDeployment({{"hiway/cache_staging_mb", "0"}});  // unbounded
  ASSERT_TRUE(d.ok());
  ASSERT_NE((*d)->staging_cache, nullptr);
  ASSERT_EQ((*d)->result_cache, nullptr);  // re-execution, faster staging
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());

  auto cold = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  auto warm = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  const SubmissionRecord* cold_rec = (*service)->record(*cold);
  const SubmissionRecord* warm_rec = (*service)->record(*warm);
  ASSERT_EQ(cold_rec->state, SubmissionState::kSucceeded);
  ASSERT_EQ(warm_rec->state, SubmissionState::kSucceeded);
  EXPECT_EQ(warm_rec->report.tasks_cached, 0);  // no result cache here
  StagingCacheStats stats = (*d)->staging_cache->stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.bytes_served, 0);
  // The warm run still executes every task (per-submission seeds shift
  // runtime noise a few percent), but saved transfers must keep it in
  // the cold run's ballpark rather than paying full localisation again.
  EXPECT_LE(warm_rec->report.Makespan(),
            cold_rec->report.Makespan() * 1.15);
}

TEST(CacheServiceTest, CrossTenantTwinSubmissionGetsZeroHits) {
  auto d = SnvDeployment({{"hiway/cache_results", "on"}});
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  for (const char* name : {"alice", "bob"}) {
    ServiceQueueOptions q;
    q.rm.name = name;
    options.queues.push_back(std::move(q));
  }
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());

  SubmissionOptions alice;
  alice.queue = "alice";  // tenant defaults to the queue name
  auto first = (*service)->SubmitStaged("snv-calling", alice);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  SubmissionOptions bob;
  bob.queue = "bob";
  auto twin = (*service)->SubmitStaged("snv-calling", bob);
  ASSERT_TRUE(twin.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  const SubmissionRecord* twin_rec = (*service)->record(*twin);
  ASSERT_NE(twin_rec, nullptr);
  ASSERT_EQ(twin_rec->state, SubmissionState::kSucceeded);
  // The same bytes exist in the cache — under alice's namespace. Bob
  // recomputes everything.
  EXPECT_EQ(twin_rec->report.tasks_cached, 0);
  ResultCacheStats stats = (*d)->result_cache->stats();
  EXPECT_GT(stats.tenant_denied, 0);
  EXPECT_EQ(stats.hits, 0);
}

TEST(CacheServiceTest, AmCrashLeavesNoDanglingEntries) {
  auto d = SnvDeployment({{"hiway/cache_results", "on"}});
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());

  // Kill the AM's node mid-run: in-flight attempts die between execution
  // and durable stage-out — the window where a buggy cache would seal
  // entries for outputs that never replicated.
  FaultInjector injector(&(*d)->engine);
  (*service)->InstallFaultHandlers(&injector);
  ASSERT_TRUE(injector.ArmSpec("kill-am-node@15").ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->state, SubmissionState::kSucceeded);
  EXPECT_GE(rec->am_failures, 1);
  // The invariant under test: every sealed entry's outputs are durable.
  EXPECT_EQ((*d)->result_cache->AuditAgainstDfs(), 0);

  // And the crash-recovered history still feeds warm reuse.
  auto warm = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* warm_rec = (*service)->record(*warm);
  ASSERT_EQ(warm_rec->state, SubmissionState::kSucceeded);
  EXPECT_GT(warm_rec->report.tasks_cached, 0);
  EXPECT_EQ((*d)->result_cache->AuditAgainstDfs(), 0);
}

TEST(CacheServiceTest, NodeLossInvalidatesStagedBytes) {
  auto d = SnvDeployment({{"hiway/cache_staging_mb", "0"}});
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto cold = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  ASSERT_GT((*d)->staging_cache->TotalBytes(), 0);

  FaultInjector injector(&(*d)->engine);
  (*service)->InstallFaultHandlers(&injector);
  // Kill a worker: its cached staging bytes must vanish with it (the
  // scheduler would otherwise chase copies on a dead node).
  auto warm = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(injector.ArmSpec("kill-node@1:node=2").ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  EXPECT_EQ((*d)->staging_cache->NodeBytes(2), 0);
  EXPECT_GT((*d)->staging_cache->stats().invalidated, 0);
}

}  // namespace
}  // namespace hiway
