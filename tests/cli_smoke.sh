#!/bin/sh
# Smoke test of the `hiway` CLI: run a Cuneiform workflow, export its
# provenance trace, and replay the trace — asserting both runs succeed and
# produce the same task count.
set -e

HIWAY_BIN="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/wf.cf" <<'EOF'
deftask align( sam : reads ) in 'bowtie2';
deftask sort( bam : sam ) in 'samtools-sort';
target sort( sam: align( reads: '/in/reads.fq' ) );
EOF

"$HIWAY_BIN" --workflow "$WORKDIR/wf.cf" --policy data-aware \
    -a cluster/workers=4 --input /in/reads.fq=64MB \
    --trace-out "$WORKDIR/trace.jsonl" > "$WORKDIR/run1.out"
grep -q "finished: 2 task(s)" "$WORKDIR/run1.out"
test -s "$WORKDIR/trace.jsonl"

"$HIWAY_BIN" --workflow "$WORKDIR/trace.jsonl" --language trace \
    --policy fcfs -a cluster/workers=4 > "$WORKDIR/run2.out"
grep -q "finished: 2 task(s)" "$WORKDIR/run2.out"

# Unknown flags and missing files fail with helpful errors.
if "$HIWAY_BIN" --bogus 2> "$WORKDIR/err1.out"; then exit 1; fi
grep -q "unknown flag" "$WORKDIR/err1.out"
if "$HIWAY_BIN" --workflow /nonexistent.cf 2> "$WORKDIR/err2.out"; then
  exit 1
fi
grep -q "cannot read" "$WORKDIR/err2.out"

echo "cli smoke test passed"
