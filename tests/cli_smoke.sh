#!/bin/sh
# Smoke test of the `hiway` CLI: run a Cuneiform workflow, export its
# provenance trace, and replay the trace — asserting both runs succeed and
# produce the same task count — then run the example CWL workflow ($2)
# through the --cwl front-end.
set -e

HIWAY_BIN="$1"
CWL_FILE="$2"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/wf.cf" <<'EOF'
deftask align( sam : reads ) in 'bowtie2';
deftask sort( bam : sam ) in 'samtools-sort';
target sort( sam: align( reads: '/in/reads.fq' ) );
EOF

"$HIWAY_BIN" --workflow "$WORKDIR/wf.cf" --policy data-aware \
    -a cluster/workers=4 --input /in/reads.fq=64MB \
    --trace-out "$WORKDIR/trace.jsonl" > "$WORKDIR/run1.out"
grep -q "finished: 2 task(s)" "$WORKDIR/run1.out"
test -s "$WORKDIR/trace.jsonl"

"$HIWAY_BIN" --workflow "$WORKDIR/trace.jsonl" --language trace \
    --policy fcfs -a cluster/workers=4 > "$WORKDIR/run2.out"
grep -q "finished: 2 task(s)" "$WORKDIR/run2.out"

# The CWL front-end: the example Montage document declares its own
# inputs, so no --input flags are needed, and the 15-step graph runs to
# completion (tests/cwl_test.cc proves the run byte-identical to DAX).
"$HIWAY_BIN" --cwl "$CWL_FILE" --policy data-aware \
    -a cluster/workers=4 > "$WORKDIR/run3.out"
grep -q "finished: 15 task(s)" "$WORKDIR/run3.out"
grep -q "(cwl)" "$WORKDIR/run3.out"

# Unknown flags and missing files fail with helpful errors.
if "$HIWAY_BIN" --bogus 2> "$WORKDIR/err1.out"; then exit 1; fi
grep -q "unknown flag" "$WORKDIR/err1.out"
if "$HIWAY_BIN" --workflow /nonexistent.cf 2> "$WORKDIR/err2.out"; then
  exit 1
fi
grep -q "cannot read" "$WORKDIR/err2.out"

echo "cli smoke test passed"
