// Unit tests for src/common: Status, Result, string helpers, RNG.

#include <gtest/gtest.h>

#include <set>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace hiway {
namespace {

// ----------------------------------------------------------------- Status -

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesRoundTripThroughName) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnimplemented,
        StatusCode::kIoError, StatusCode::kParseError,
        StatusCode::kRuntimeError}) {
    EXPECT_NE(StatusCodeToString(code), "Unknown");
    EXPECT_NE(StatusCodeToString(code), "OK");
  }
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::IoError("disk on fire").WithContext("stage-in");
  EXPECT_TRUE(st.IsIoError());
  EXPECT_EQ(st.message(), "stage-in: disk on fire");
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopiesShareRepresentation) {
  Status a = Status::ParseError("bad token");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "bad token");
}

// ----------------------------------------------------------------- Result -

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto chain = [](int v) -> Result<int> {
    HIWAY_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
    return parsed * 2;
  };
  EXPECT_EQ(*chain(4), 8);
  EXPECT_TRUE(chain(-4).status().IsInvalidArgument());
}

TEST(ResultTest, OkStatusIntoResultBecomesError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsRuntimeError());
}

// ---------------------------------------------------------------- strings -

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, JoinInverse) {
  std::vector<std::string> parts = {"a", "bb", "ccc"};
  EXPECT_EQ(StrJoin(parts, "/"), "a/bb/ccc");
  EXPECT_EQ(StrSplit(StrJoin(parts, ","), ','), parts);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  x y\t\n"), "x y");
  EXPECT_EQ(StrTrim("\r\n \t"), "");
  EXPECT_EQ(StrTrim("abc"), "abc");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(StartsWith("workflow.dax", "workflow"));
  EXPECT_FALSE(StartsWith("dax", "workflow"));
  EXPECT_TRUE(EndsWith("trace.json", ".json"));
  EXPECT_FALSE(EndsWith("json", "trace.json"));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -17 "), -17);
  EXPECT_FALSE(ParseInt64("12abc").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s-%03d", "node", 7), "node-007");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(1024.0 * 1024 * 1024), "1.00 GB");
}

TEST(StringsTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(75), "1:15");
  EXPECT_EQ(HumanDuration(3661), "1:01:01");
  EXPECT_EQ(HumanDuration(0), "0:00");
}

// -------------------------------------------------------------------- RNG -

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, LogNormalIsPositiveWithMedianNearParameter) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) {
    double x = rng.LogNormal(5.0, 0.1);
    EXPECT_GT(x, 0.0);
    xs.push_back(x);
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 5.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

}  // namespace
}  // namespace hiway
