// End-to-end tests of the Hi-WAY AM driver on small simulated clusters.

#include "src/core/hiway_am.h"

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/tools/standard_tools.h"

namespace hiway {
namespace {

/// Everything a small workflow run needs, wired together.
struct TestRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Dfs> dfs;
  std::unique_ptr<ResourceManager> rm;
  ToolRegistry tools;
  ProvenanceManager provenance;
  RuntimeEstimator estimator;

  explicit TestRig(int nodes, int cores = 4) {
    NodeSpec node;
    node.cores = cores;
    node.memory_mb = 8192;
    ClusterSpec spec = ClusterSpec::Uniform(nodes, node, 1250.0);
    cluster = std::make_unique<Cluster>(&engine, &net, spec);
    DfsOptions dfs_opts;
    dfs_opts.replication = 2;
    dfs = std::make_unique<Dfs>(cluster.get(), dfs_opts);
    rm = std::make_unique<ResourceManager>(cluster.get(), YarnOptions());
    RegisterStandardTools(&tools);
  }

  HiWayAm MakeAm(HiWayOptions options = HiWayOptions()) {
    return HiWayAm(cluster.get(), rm.get(), dfs.get(), &tools, &provenance,
                   &estimator, options);
  }
};

TaskSpec MakeTask(TaskId id, std::string tool, std::vector<std::string> in,
                  std::vector<std::string> out) {
  TaskSpec t;
  t.id = id;
  t.signature = tool;
  t.tool = std::move(tool);
  t.command = t.signature + " ...";
  t.input_files = std::move(in);
  for (std::string& path : out) {
    OutputSpec o;
    o.param = "out";
    o.path = std::move(path);
    t.outputs.push_back(std::move(o));
  }
  return t;
}

TEST(HiWayAmTest, RunsLinearPipeline) {
  TestRig rig(4);
  ASSERT_TRUE(rig.dfs->IngestFile("/in/reads.fq", 64 << 20).ok());

  std::vector<TaskSpec> tasks;
  tasks.push_back(MakeTask(1, "bowtie2", {"/in/reads.fq"}, {"/out/a.sam"}));
  tasks.push_back(MakeTask(2, "samtools-sort", {"/out/a.sam"}, {"/out/a.bam"}));
  tasks.push_back(MakeTask(3, "varscan", {"/out/a.bam"}, {"/out/a.vcf"}));
  StaticWorkflowSource source("pipeline", tasks, {"/out/a.vcf"});

  FcfsScheduler scheduler;
  HiWayAm am = rig.MakeAm();
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 3);
  EXPECT_GT(report->Makespan(), 0.0);
  // All outputs exist in DFS.
  EXPECT_TRUE(rig.dfs->Exists("/out/a.sam"));
  EXPECT_TRUE(rig.dfs->Exists("/out/a.bam"));
  EXPECT_TRUE(rig.dfs->Exists("/out/a.vcf"));
}

TEST(HiWayAmTest, ParallelFanOutUsesAllNodes) {
  TestRig rig(4);
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) {
    std::string in = StrFormat("/in/chunk%d.fq", i);
    ASSERT_TRUE(rig.dfs->IngestFile(in, 32 << 20).ok());
    tasks.push_back(
        MakeTask(i + 1, "bowtie2", {in}, {StrFormat("/out/%d.sam", i)}));
  }
  StaticWorkflowSource source("fanout", tasks);
  FcfsScheduler scheduler;
  HiWayAm am = rig.MakeAm();
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 8);
  // Provenance recorded tasks on more than one node.
  std::set<int32_t> nodes;
  for (const auto& ev : rig.provenance.Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd) nodes.insert(ev.node);
  }
  EXPECT_GT(nodes.size(), 1u);
}

TEST(HiWayAmTest, MissingInputDeadlocksWithDiagnostic) {
  TestRig rig(2);
  std::vector<TaskSpec> tasks;
  tasks.push_back(MakeTask(1, "bowtie2", {"/in/never-created.fq"},
                           {"/out/x.sam"}));
  StaticWorkflowSource source("deadlock", tasks);
  FcfsScheduler scheduler;
  HiWayAm am = rig.MakeAm();
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.IsFailedPrecondition());
  EXPECT_NE(report->status.message().find("never-created"),
            std::string::npos);
}

TEST(HiWayAmTest, EmptyWorkflowFinishesImmediately) {
  TestRig rig(2);
  StaticWorkflowSource source("empty", {});
  FcfsScheduler scheduler;
  HiWayAm am = rig.MakeAm();
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.ok());
  EXPECT_EQ(report->tasks_completed, 0);
}

TEST(HiWayAmTest, RetriesTransientToolFailuresOnOtherNodes) {
  TestRig rig(4);
  ASSERT_TRUE(rig.dfs->IngestFile("/in/x", 8 << 20).ok());
  ToolProfile flaky;
  flaky.name = "flaky";
  flaky.fixed_cpu_seconds = 5.0;
  flaky.failure_probability = 0.7;
  rig.tools.Register(flaky);

  std::vector<TaskSpec> tasks;
  tasks.push_back(MakeTask(1, "flaky", {"/in/x"}, {"/out/y"}));
  StaticWorkflowSource source("flaky-wf", tasks);
  FcfsScheduler scheduler;
  HiWayOptions options;
  options.task_retry.max_attempts = 50;  // practically always succeeds eventually
  HiWayAm am = rig.MakeAm(options);
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 1);
  EXPECT_EQ(report->task_attempts,
            report->failed_attempts + report->tasks_completed);
}

TEST(HiWayAmTest, StaticSchedulerRejectedForIterativeSource) {
  // A fake iterative source.
  class IterativeSource : public WorkflowSource {
   public:
    std::string name() const override { return "iterative"; }
    bool IsStatic() const override { return false; }
    Result<std::vector<TaskSpec>> Init() override {
      return std::vector<TaskSpec>{};
    }
    Result<std::vector<TaskSpec>> OnTaskCompleted(const TaskResult&) override {
      return std::vector<TaskSpec>{};
    }
    bool IsDone() const override { return true; }
    std::vector<std::string> Targets() const override { return {}; }
  };
  TestRig rig(2);
  IterativeSource source;
  RoundRobinScheduler scheduler;
  HiWayAm am = rig.MakeAm();
  Status st = am.Submit(&source, &scheduler);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(HiWayAmTest, HeftRunsStaticDagToCompletion) {
  TestRig rig(3);
  ASSERT_TRUE(rig.dfs->IngestFile("/in/a", 16 << 20).ok());
  std::vector<TaskSpec> tasks;
  tasks.push_back(MakeTask(1, "mProjectPP", {"/in/a"}, {"/out/p1"}));
  tasks.push_back(MakeTask(2, "mProjectPP", {"/in/a"}, {"/out/p2"}));
  tasks.push_back(MakeTask(3, "mAdd", {"/out/p1", "/out/p2"}, {"/out/sum"}));
  StaticWorkflowSource source("mini-montage", tasks, {"/out/sum"});
  HeftScheduler scheduler(&rig.estimator);
  HiWayAm am = rig.MakeAm();
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 3);
}

TEST(HiWayAmTest, TailoredContainersCapAtToolThreads) {
  TestRig rig(2, /*cores=*/8);
  ASSERT_TRUE(rig.dfs->IngestFile("/in/v.vcf", 1 << 20).ok());
  // annovar is single-threaded; with tailoring its container shrinks to
  // one core, so eight annotate tasks can run on one 8-core node at once.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(MakeTask(i + 1, "annovar", {"/in/v.vcf"},
                             {StrFormat("/out/a%d.csv", i)}));
  }
  StaticWorkflowSource fat_source("fat", tasks);
  FcfsScheduler fat_sched;
  HiWayOptions fat;
  fat.container_vcores = 8;
  fat.container_memory_mb = 8000;
  HiWayAm fat_am = rig.MakeAm(fat);
  ASSERT_TRUE(fat_am.Submit(&fat_source, &fat_sched).ok());
  auto fat_report = fat_am.RunToCompletion();
  ASSERT_TRUE(fat_report.ok() && fat_report->status.ok());

  TestRig rig2(2, /*cores=*/8);
  ASSERT_TRUE(rig2.dfs->IngestFile("/in/v.vcf", 1 << 20).ok());
  StaticWorkflowSource tailored_source("tailored", tasks);
  FcfsScheduler tailored_sched;
  HiWayOptions tailored = fat;
  tailored.tailor_containers = true;
  HiWayAm tailored_am = rig2.MakeAm(tailored);
  ASSERT_TRUE(tailored_am.Submit(&tailored_source, &tailored_sched).ok());
  auto tailored_report = tailored_am.RunToCompletion();
  ASSERT_TRUE(tailored_report.ok() && tailored_report->status.ok());

  // Tailoring unlocks parallelism the identical fat containers wasted.
  EXPECT_LT(tailored_report->Makespan(), 0.5 * fat_report->Makespan());
}

TEST(HiWayAmTest, OnlineMctRunsIterativeWorkflows) {
  TestRig rig(3);
  ASSERT_TRUE(rig.dfs->IngestFile("/in/reads.fq", 16 << 20).ok());
  std::vector<TaskSpec> tasks;
  tasks.push_back(MakeTask(1, "bowtie2", {"/in/reads.fq"}, {"/out/a.sam"}));
  StaticWorkflowSource source("mct", tasks);
  OnlineMctScheduler scheduler(&rig.estimator, 3);
  EXPECT_FALSE(scheduler.IsStatic());
  HiWayAm am = rig.MakeAm();
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->status.ok());
}

}  // namespace
}  // namespace hiway
