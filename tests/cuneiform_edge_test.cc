// Edge-case tests for the Cuneiform-lite front-end beyond the basics in
// cuneiform_test.cc: nested control flow, mixed map/aggregate shapes,
// value outputs inside lists, shadowing, memoisation across recursion,
// and parser/interpreter error surfaces.

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/lang/cuneiform.h"
#include "src/lang/cuneiform_parser.h"

namespace hiway {
namespace {

/// Minimal driver: runs every emitted task with a scripted stdout.
class Driver {
 public:
  explicit Driver(CuneiformSource* source) : source_(source) {}

  Status RunAll(std::function<std::string(const TaskSpec&)> stdout_for = {}) {
    auto initial = source_->Init();
    HIWAY_RETURN_IF_ERROR(initial.status());
    pending_ = *initial;
    int guard = 0;
    while (!pending_.empty()) {
      if (++guard > 5000) return Status::RuntimeError("runaway");
      TaskSpec spec = pending_.front();
      pending_.erase(pending_.begin());
      executed_.push_back(spec);
      TaskResult result;
      result.id = spec.id;
      result.signature = spec.signature;
      result.status = Status::OK();
      if (stdout_for) result.stdout_value = stdout_for(spec);
      for (const OutputSpec& out : spec.outputs) {
        if (!out.is_value) result.produced_files.emplace_back(out.path, 64);
      }
      auto more = source_->OnTaskCompleted(result);
      HIWAY_RETURN_IF_ERROR(more.status());
      pending_.insert(pending_.end(), more->begin(), more->end());
    }
    return Status::OK();
  }

  int Count(const std::string& signature) const {
    int n = 0;
    for (const TaskSpec& t : executed_) {
      if (t.signature == signature) ++n;
    }
    return n;
  }

  std::vector<TaskSpec> executed_;

 private:
  CuneiformSource* source_;
  std::vector<TaskSpec> pending_;
};

TEST(CuneiformEdgeTest, NestedConditionals) {
  auto source = CuneiformSource::Parse(R"(
    deftask probe( <v> : ~tag ) in 'probe';
    deftask act( o : ~which ) in 'act';
    target if probe( tag: 'outer' )
           then if probe( tag: 'inner' )
                then act( which: 'both' )
                else act( which: 'outer-only' )
                end
           else act( which: 'neither' )
           end;
  )");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Driver driver(source->get());
  ASSERT_TRUE(driver.RunAll([](const TaskSpec& t) -> std::string {
    if (t.signature != "probe") return "";
    return t.params.at("tag") == "outer" ? "yes" : "";
  }).ok());
  // outer probe true, inner probe false -> act(outer-only); the inner
  // probe only ran after the outer resolved.
  EXPECT_EQ(driver.Count("probe"), 2);
  EXPECT_EQ(driver.Count("act"), 1);
  EXPECT_EQ(driver.executed_.back().params.at("which"), "outer-only");
}

TEST(CuneiformEdgeTest, MapFeedsAggregateFeedsMap) {
  auto source = CuneiformSource::Parse(R"(
    deftask split( part : whole ) in 'splitter';
    deftask merge( all : [parts] ) in 'merger';
    deftask polish( out : item ) in 'polisher';
    let parts = split( whole: ['/a', '/b', '/c'] );
    let merged = merge( parts: parts );
    target polish( item: merged );
  )");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Driver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  EXPECT_EQ(driver.Count("split"), 3);
  EXPECT_EQ(driver.Count("merge"), 1);
  EXPECT_EQ(driver.Count("polish"), 1);
  // Ordering: all splits precede the merge, which precedes the polish.
  EXPECT_EQ(driver.executed_[3].signature, "merge");
  EXPECT_EQ(driver.executed_[4].signature, "polish");
}

TEST(CuneiformEdgeTest, MultiOutputTaskYieldsTuple) {
  auto source = CuneiformSource::Parse(R"(
    deftask both( left right : i ) in 'both';
    deftask useL( o : x ) in 'use-l';
    let pair = both( i: '/in' );
    target pair;
  )");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Driver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  EXPECT_EQ(driver.Count("both"), 1);
  // Targets flatten the tuple: two files.
  EXPECT_EQ((*source)->Targets().size(), 2u);
}

TEST(CuneiformEdgeTest, ValueOutputsInsideListsAndTruthiness) {
  auto source = CuneiformSource::Parse(R"(
    deftask vote( <v> : ~name ) in 'voter';
    deftask yes( o : ~t ) in 'yes';
    deftask no( o : ~t ) in 'no';
    let votes = [ vote( name: 'a' ), vote( name: 'b' ) ];
    target if votes then yes( t: 'quorum' ) else no( t: 'none' ) end;
  )");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Driver driver(source->get());
  // The condition is a non-empty *list*: truthy regardless of contents,
  // but all elements must resolve before the branch is taken.
  ASSERT_TRUE(driver.RunAll([](const TaskSpec&) { return ""; }).ok());
  EXPECT_EQ(driver.Count("vote"), 2);
  EXPECT_EQ(driver.Count("yes"), 1);
  EXPECT_EQ(driver.Count("no"), 0);
}

TEST(CuneiformEdgeTest, LetShadowingUsesLatestBinding) {
  auto source = CuneiformSource::Parse(R"(
    deftask t( o : ~s ) in 'tool';
    let x = 'first';
    let x = x + '-second';
    target t( s: x );
  )");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Driver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  EXPECT_EQ(driver.executed_[0].params.at("s"), "first-second");
}

TEST(CuneiformEdgeTest, MemoisationHoldsThroughRecursionReplay) {
  // Each recursion level replays the whole program; the task invoked at
  // level k must not be re-submitted at level k+1.
  auto source = CuneiformSource::Parse(R"(
    deftask step( next : c ) in 'step';
    deftask check( <ok> : c ) in 'check';
    defun go(c) {
      if check( c: c ) then c else go( step( c: c ) ) end
    }
    target go( '/seed' );
  )");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Driver driver(source->get());
  int checks = 0;
  ASSERT_TRUE(driver.RunAll([&checks](const TaskSpec& t) -> std::string {
    if (t.signature == "check") return ++checks >= 5 ? "true" : "";
    return "";
  }).ok());
  EXPECT_EQ(driver.Count("check"), 5);
  EXPECT_EQ(driver.Count("step"), 4);
  // 9 total — replay submitted nothing twice.
  EXPECT_EQ(driver.executed_.size(), 9u);
  EXPECT_EQ((*source)->applications(), 9u);
}

TEST(CuneiformEdgeTest, CrossProductOrderIsRowMajor) {
  auto source = CuneiformSource::Parse(R"(
    deftask mix( o : a b ) in 'mixer';
    target mix( a: ['/a0', '/a1'], b: ['/b0', '/b1'] );
  )");
  ASSERT_TRUE(source.ok());
  Driver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  ASSERT_EQ(driver.executed_.size(), 4u);
  auto inputs = [&](size_t i) {
    return StrJoin(driver.executed_[i].input_files, "+");
  };
  EXPECT_EQ(inputs(0), "/a0+/b0");
  EXPECT_EQ(inputs(1), "/a0+/b1");
  EXPECT_EQ(inputs(2), "/a1+/b0");
  EXPECT_EQ(inputs(3), "/a1+/b1");
}

TEST(CuneiformEdgeTest, TaskPropsBecomeContainerSizingAndParams) {
  auto source = CuneiformSource::Parse(R"(
    deftask heavy( o : i ) in 'heavy' { cpu: 8, mem: 16384, mode: 'fast' };
    target heavy( i: '/in' );
  )");
  ASSERT_TRUE(source.ok());
  Driver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  const TaskSpec& t = driver.executed_[0];
  EXPECT_EQ(t.vcores, 8);
  EXPECT_DOUBLE_EQ(t.memory_mb, 16384.0);
  EXPECT_EQ(t.params.at("mode"), "fast");
}

TEST(CuneiformEdgeTest, ErrorsSurfaceCleanly) {
  struct Case {
    const char* program;
    const char* expect_substr;
  };
  const Case cases[] = {
      {"deftask t( o : i ) in 'x'; target t( '/a' );", "named"},
      {"deftask t( o : i ) in 'x'; target t( i: '/a', j: '/b' );",
       "expects"},
      {"deftask t( o : i ) in 'x'; target t( j: '/a' );", "missing"},
      {"defun f(a) { a } target f('x', 'y');", "expects"},
      {"deftask t( o : [xs] ) in 'x'; target t( xs: 'single' );", "list"},
      {"target 'a' + ['l'];", "concatenate"},
  };
  for (const Case& c : cases) {
    auto source = CuneiformSource::Parse(c.program);
    ASSERT_TRUE(source.ok()) << c.program;
    Driver driver(source->get());
    Status st = driver.RunAll();
    EXPECT_FALSE(st.ok()) << c.program;
    EXPECT_NE(st.message().find(c.expect_substr), std::string::npos)
        << c.program << " -> " << st.ToString();
  }
}

TEST(CuneiformEdgeTest, TargetsMayMixConcreteStringsAndTasks) {
  auto source = CuneiformSource::Parse(R"(
    deftask t( o : i ) in 'x';
    target 'just-a-string', t( i: '/in' );
  )");
  ASSERT_TRUE(source.ok());
  Driver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  EXPECT_TRUE((*source)->IsDone());
  // Only file values appear among Targets (the string is a value).
  EXPECT_EQ((*source)->Targets().size(), 1u);
}

TEST(CuneiformEdgeTest, WhitespaceAndCommentRobustness) {
  auto source = CuneiformSource::Parse(
      "% header comment\n"
      "deftask   t(  o  :  i  )  in  'x'  ;  % trailing\n"
      "\n\n"
      "target\n t(\n i:\n '/in'\n )\n ;\n% eof");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Driver driver(source->get());
  EXPECT_TRUE(driver.RunAll().ok());
}

// --- fuzz regressions (tests/fuzz/corpus/cuneiform/, docs/fuzzing.md) ----

TEST(CuneiformFuzzRegressionTest, DeepParensErrorNotStackOverflow) {
  // crash_deep_parens.cf: 200k nested '(' recursed once per character and
  // crashed with SIGSEGV (stack exhaustion). The parser now refuses at
  // kCuneiformMaxExprDepth with an error naming the limit.
  std::string src = "let x = ";
  src += std::string(static_cast<size_t>(cuneiform::kCuneiformMaxExprDepth) + 50, '(');
  src += "'a'";
  src += std::string(static_cast<size_t>(cuneiform::kCuneiformMaxExprDepth) + 50, ')');
  src += ";\ntarget x;\n";
  auto source = CuneiformSource::Parse(src);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find("kMaxExprDepth"),
            std::string::npos)
      << source.status().ToString();
}

TEST(CuneiformFuzzRegressionTest, InputSizeErrorNamesLimit) {
  std::string src(cuneiform::kCuneiformMaxInputBytes + 1, '%');  // one huge comment
  auto source = CuneiformSource::Parse(src);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().ToString().find("kCuneiformMaxInputBytes"),
            std::string::npos)
      << source.status().ToString();
}

}  // namespace
}  // namespace hiway
