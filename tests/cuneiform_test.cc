// Tests of the Cuneiform-lite lexer, parser, and iterative interpreter,
// including end-to-end execution on the Hi-WAY AM (conditionals,
// map/cross application, aggregation, and k-means-style recursion).

#include "src/lang/cuneiform.h"

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/core/hiway_am.h"
#include "src/lang/cuneiform_parser.h"
#include "src/tools/standard_tools.h"

namespace hiway {
namespace {

using cuneiform::Lex;
using cuneiform::ParseCuneiform;
using cuneiform::TokenKind;

// ------------------------------------------------------------------ lexer -

TEST(CuneiformLexerTest, TokenizesBasicProgram) {
  auto tokens = Lex("let x = 'a.txt'; % comment\ntarget x;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kIdent, TokenKind::kEquals,
                TokenKind::kString, TokenKind::kSemicolon, TokenKind::kIdent,
                TokenKind::kIdent, TokenKind::kSemicolon, TokenKind::kEof}));
}

TEST(CuneiformLexerTest, HandlesEscapesInStrings) {
  auto tokens = Lex("'a\\'b\\nc'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a'b\nc");
}

TEST(CuneiformLexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(CuneiformLexerTest, RejectsUnknownCharacter) {
  auto r = Lex("let x = @;");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CuneiformLexerTest, TracksLineNumbers) {
  auto tokens = Lex("a\nb\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 3);
}

// ----------------------------------------------------------------- parser -

TEST(CuneiformParserTest, ParsesTaskDefinition) {
  auto program = ParseCuneiform(
      "deftask align( sam : ref reads ) in 'bowtie2' { cpu: 8 };\n"
      "let x = align( ref: 'r.fa', reads: 'a.fq' );\n"
      "target x;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->tasks.count("align"), 1u);
  const auto& def = program->tasks.at("align");
  EXPECT_EQ(def.tool, "bowtie2");
  ASSERT_EQ(def.outputs.size(), 1u);
  EXPECT_EQ(def.outputs[0].name, "sam");
  ASSERT_EQ(def.inputs.size(), 2u);
  EXPECT_EQ(def.props.at("cpu"), "8");
}

TEST(CuneiformParserTest, ParsesValueOutputAndParamKinds) {
  auto program = ParseCuneiform(
      "deftask check( <verdict> : [olds] ~label f ) in 'chk';\n"
      "target check( olds: ['a'], label: 'x', f: 'b' );");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& def = program->tasks.at("check");
  EXPECT_TRUE(def.outputs[0].is_value);
  EXPECT_TRUE(def.inputs[0].is_list);
  EXPECT_TRUE(def.inputs[1].is_string);
  EXPECT_FALSE(def.inputs[2].is_list);
}

TEST(CuneiformParserTest, RequiresTarget) {
  auto program = ParseCuneiform("let x = 'a';");
  EXPECT_FALSE(program.ok());
}

TEST(CuneiformParserTest, RejectsDuplicateDefinitions) {
  auto program = ParseCuneiform(
      "deftask t( o : i ) in 'a'; deftask t( o : i ) in 'b'; target 'x';");
  EXPECT_FALSE(program.ok());
}

TEST(CuneiformParserTest, ParsesIfAndConcatAndFunctions) {
  auto program = ParseCuneiform(
      "defun f(a, b) { if a then b else a + '-x' end }\n"
      "target f('1', '2');");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->funs.count("f"), 1u);
}

TEST(CuneiformParserTest, ReportsLineNumbersInErrors) {
  auto program = ParseCuneiform("let x = 'a';\nlet y ;\ntarget x;");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos);
}

// ------------------------------------------------------- interpreter unit -

/// Drives a CuneiformSource without a cluster: tasks "complete" with
/// synthetic outputs decided by `stdout_for`.
class FakeDriver {
 public:
  explicit FakeDriver(CuneiformSource* source) : source_(source) {}

  Status RunAll(
      const std::function<std::string(const TaskSpec&)>& stdout_for =
          nullptr) {
    auto initial = source_->Init();
    HIWAY_RETURN_IF_ERROR(initial.status());
    pending_.insert(pending_.end(), initial->begin(), initial->end());
    int guard = 0;
    while (!pending_.empty()) {
      if (++guard > 10000) return Status::RuntimeError("runaway workflow");
      TaskSpec spec = pending_.front();
      pending_.erase(pending_.begin());
      executed_.push_back(spec);
      TaskResult result;
      result.id = spec.id;
      result.signature = spec.signature;
      result.status = Status::OK();
      result.node = 0;
      if (stdout_for) result.stdout_value = stdout_for(spec);
      for (const OutputSpec& out : spec.outputs) {
        if (!out.is_value) result.produced_files.emplace_back(out.path, 1024);
      }
      auto more = source_->OnTaskCompleted(result);
      HIWAY_RETURN_IF_ERROR(more.status());
      pending_.insert(pending_.end(), more->begin(), more->end());
    }
    return Status::OK();
  }

  const std::vector<TaskSpec>& executed() const { return executed_; }

 private:
  CuneiformSource* source_;
  std::vector<TaskSpec> pending_;
  std::vector<TaskSpec> executed_;
};

TEST(CuneiformInterpTest, SingleTaskWorkflow) {
  auto source = CuneiformSource::Parse(
      "deftask align( sam : reads ) in 'bowtie2';\n"
      "target align( reads: '/in/a.fq' );");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  FakeDriver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  ASSERT_EQ(driver.executed().size(), 1u);
  EXPECT_EQ(driver.executed()[0].signature, "align");
  EXPECT_EQ(driver.executed()[0].input_files,
            std::vector<std::string>{"/in/a.fq"});
  EXPECT_TRUE((*source)->IsDone());
  EXPECT_EQ((*source)->Targets().size(), 1u);
}

TEST(CuneiformInterpTest, MapsOverLists) {
  auto source = CuneiformSource::Parse(
      "deftask align( sam : reads ) in 'bowtie2';\n"
      "let sams = align( reads: ['/a', '/b', '/c'] );\n"
      "target sams;");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  EXPECT_EQ(driver.executed().size(), 3u);
  EXPECT_EQ((*source)->Targets().size(), 3u);
}

TEST(CuneiformInterpTest, CrossProductOverTwoLists) {
  auto source = CuneiformSource::Parse(
      "deftask mix( out : a b ) in 'mixer';\n"
      "target mix( a: ['/a1', '/a2'], b: ['/b1', '/b2', '/b3'] );");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  EXPECT_EQ(driver.executed().size(), 6u);
}

TEST(CuneiformInterpTest, AggregatingParameterConsumesWholeList) {
  auto source = CuneiformSource::Parse(
      "deftask merge( table : [parts] ) in 'merger';\n"
      "deftask split( part : whole ) in 'splitter';\n"
      "let parts = split( whole: ['/x', '/y'] );\n"
      "target merge( parts: parts );");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  // 2 splits + 1 merge; merge waits for both splits.
  ASSERT_EQ(driver.executed().size(), 3u);
  EXPECT_EQ(driver.executed()[2].signature, "merge");
  EXPECT_EQ(driver.executed()[2].input_files.size(), 2u);
}

TEST(CuneiformInterpTest, MemoisationDeduplicatesIdenticalApplications) {
  auto source = CuneiformSource::Parse(
      "deftask t( o : i ) in 'tool';\n"
      "let a = t( i: '/same' );\n"
      "let b = t( i: '/same' );\n"
      "target a, b;");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  EXPECT_EQ(driver.executed().size(), 1u);  // one invocation, shared
}

TEST(CuneiformInterpTest, ConditionalOnTaskStdout) {
  auto source = CuneiformSource::Parse(
      "deftask decide( <v> : i ) in 'decider';\n"
      "deftask yes( o : i ) in 'yes-tool';\n"
      "deftask no( o : i ) in 'no-tool';\n"
      "let v = decide( i: '/in' );\n"
      "target if v then yes( i: '/in' ) else no( i: '/in' ) end;");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  ASSERT_TRUE(driver.RunAll([](const TaskSpec& t) {
    return t.signature == "decide" ? "true" : "";
  }).ok());
  ASSERT_EQ(driver.executed().size(), 2u);
  EXPECT_EQ(driver.executed()[1].signature, "yes");
}

TEST(CuneiformInterpTest, RecursiveIterationUntilConvergence) {
  // The k-means pattern from the paper: iterate until a check task's
  // stdout says "true". Converges on the 4th check.
  auto source = CuneiformSource::Parse(
      "deftask step( next : points centroids ) in 'kmeans-step';\n"
      "deftask check( <ok> : old new ) in 'kmeans-check';\n"
      "defun iterate(points, centroids) {\n"
      "  if check( old: centroids, new: step( points: points,\n"
      "                                       centroids: centroids ) )\n"
      "  then step( points: points, centroids: centroids )\n"
      "  else iterate( points, step( points: points,\n"
      "                              centroids: centroids ) )\n"
      "  end\n"
      "}\n"
      "target iterate( '/in/points', '/in/c0' );");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  FakeDriver driver(source->get());
  int checks = 0;
  ASSERT_TRUE(driver.RunAll([&checks](const TaskSpec& t) -> std::string {
    if (t.signature == "check") {
      return ++checks >= 4 ? "true" : "";
    }
    return "";
  }).ok());
  // 4 iterations: each runs one step + one check (memoised across the
  // recursion: the "then" branch reuses the step of the final iteration).
  int steps = 0;
  for (const TaskSpec& t : driver.executed()) {
    if (t.signature == "step") ++steps;
  }
  EXPECT_EQ(checks, 4);
  EXPECT_EQ(steps, 4);
  EXPECT_TRUE((*source)->IsDone());
}

TEST(CuneiformInterpTest, UndefinedVariableFailsCleanly) {
  auto source = CuneiformSource::Parse("target nope;");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  Status st = driver.RunAll();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(CuneiformInterpTest, UnboundedStaticRecursionIsCaught) {
  auto source = CuneiformSource::Parse(
      "defun loop(x) { loop(x) }\n"
      "target loop('a');");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  Status st = driver.RunAll();
  EXPECT_TRUE(st.IsRuntimeError()) << st.ToString();
  EXPECT_NE(st.message().find("depth"), std::string::npos);
}

TEST(CuneiformInterpTest, StringParamsAndConcat) {
  auto source = CuneiformSource::Parse(
      "deftask grep( hits : ~pattern corpus ) in 'grep';\n"
      "let p = 'AC' + 'GT';\n"
      "target grep( pattern: p, corpus: '/data/genome' );");
  ASSERT_TRUE(source.ok());
  FakeDriver driver(source->get());
  ASSERT_TRUE(driver.RunAll().ok());
  ASSERT_EQ(driver.executed().size(), 1u);
  EXPECT_EQ(driver.executed()[0].params.at("pattern"), "ACGT");
  EXPECT_EQ(driver.executed()[0].input_files.size(), 1u);
}

// -------------------------------------------------- end-to-end on the AM --

TEST(CuneiformEndToEndTest, KmeansIterativeWorkflowOnCluster) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 4;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(3, node, 1250.0));
  Dfs dfs(&cluster, DfsOptions{});
  ResourceManager rm(&cluster, YarnOptions{});
  ToolRegistry tools;
  RegisterKmeansTools(&tools, /*converge_after=*/3);
  ProvenanceManager provenance;
  RuntimeEstimator estimator;

  ASSERT_TRUE(dfs.IngestFile("/in/points.csv", 32 << 20).ok());

  auto source = CuneiformSource::Parse(
      "deftask init( c : points ) in 'kmeans-init';\n"
      "deftask step( next : points centroids ) in 'kmeans-step';\n"
      "deftask check( <ok> : old new ) in 'kmeans-check';\n"
      "defun iterate(points, centroids) {\n"
      "  if check( old: centroids,\n"
      "            new: step( points: points, centroids: centroids ) )\n"
      "  then step( points: points, centroids: centroids )\n"
      "  else iterate( points,\n"
      "                step( points: points, centroids: centroids ) )\n"
      "  end\n"
      "}\n"
      "target iterate( '/in/points.csv', init( points: '/in/points.csv' ) );");
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  FcfsScheduler scheduler;
  HiWayAm am(&cluster, &rm, &dfs, &tools, &provenance, &estimator,
             HiWayOptions{});
  ASSERT_TRUE(am.Submit(source->get(), &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();
  // init + 3 iterations of (step + check) = 7 tasks.
  EXPECT_EQ(report->tasks_completed, 7);
  // The final target file exists in DFS.
  auto targets = (*source)->Targets();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_TRUE(dfs.Exists(targets[0]));
}

}  // namespace
}  // namespace hiway
