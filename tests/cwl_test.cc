// Gate for the CWL-subset front-end (src/lang/cwl_source.h): the CWL
// rendition of the Montage workload (examples/montage_3.cwl.json) must
// execute byte-identically to the native DAX driver — same task graph,
// same staged inputs, and a DFS namespace that matches file-for-file and
// byte-for-byte after the run. Plus negative-case tables asserting that
// malformed CWL documents fail with errors naming the offending element.

#include "src/lang/cwl_source.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "src/core/client.h"
#include "src/lang/dax_source.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

std::string ReadExample(const std::string& name) {
  std::ifstream in(std::string(HIWAY_EXAMPLES_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "cannot open example " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Snapshot of the DFS namespace: path -> size. The CWL run must
/// reproduce the native run's outputs exactly.
std::map<std::string, int64_t> DfsSnapshot(Dfs* dfs) {
  std::map<std::string, int64_t> files;
  for (const std::string& path : dfs->ListFiles()) {
    auto info = dfs->Stat(path);
    if (info.ok()) files[path] = info->size_bytes;
  }
  return files;
}

Result<std::unique_ptr<Deployment>> SmallDeployment() {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  return karamel.Converge();
}

/// Stages the source's declared inputs into a fresh deployment, runs it
/// to completion, and returns the final DFS snapshot.
std::map<std::string, int64_t> RunAndSnapshot(WorkflowSource* source,
                                              const std::vector<
                                                  std::pair<std::string,
                                                            int64_t>>& inputs) {
  auto d = SmallDeployment();
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  for (const auto& [path, size] : inputs) {
    EXPECT_TRUE((*d)->dfs->IngestFile(path, size).ok()) << path;
  }
  HiWayClient client(d->get());
  auto report = client.RunSource(source, "data-aware");
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    EXPECT_GT(report->tasks_completed, 0);
  }
  return DfsSnapshot((*d)->dfs.get());
}

TEST(CwlSourceTest, ParsesMontageExample) {
  auto source = CwlSource::Parse(ReadExample("montage_3.cwl.json"));
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // 3 projections + 3 diff-fits + concat + bgmodel + 3 backgrounds +
  // imgtbl + add + shrink + jpeg = 15 steps.
  EXPECT_EQ((*source)->task_count(), 15u);
  EXPECT_EQ((*source)->required_inputs().size(), 3u);
  EXPECT_EQ((*source)->Targets(),
            std::vector<std::string>{"/dax/mosaic.jpg"});
}

TEST(CwlSourceTest, MontageExampleMatchesNativeDaxByteForByte) {
  MontageWorkloadOptions options;
  options.num_images = 3;
  GeneratedWorkload native = MakeMontageWorkflow(options);

  auto dax = DaxSource::Parse(native.document);
  ASSERT_TRUE(dax.ok()) << dax.status().ToString();
  auto cwl = CwlSource::Parse(ReadExample("montage_3.cwl.json"));
  ASSERT_TRUE(cwl.ok()) << cwl.status().ToString();

  // Same graph shape and same staged-input contract before running.
  EXPECT_EQ((*cwl)->task_count(), (*dax)->task_count());
  std::set<std::pair<std::string, int64_t>> native_inputs(
      native.inputs.begin(), native.inputs.end());
  std::set<std::pair<std::string, int64_t>> cwl_inputs(
      (*cwl)->required_inputs().begin(), (*cwl)->required_inputs().end());
  EXPECT_EQ(cwl_inputs, native_inputs);

  // The gate: both drivers leave the DFS in the identical state.
  std::map<std::string, int64_t> native_files =
      RunAndSnapshot(dax->get(), native.inputs);
  std::map<std::string, int64_t> cwl_files =
      RunAndSnapshot(cwl->get(), (*cwl)->required_inputs());
  EXPECT_EQ(cwl_files, native_files);
  EXPECT_EQ(cwl_files.count("/dax/mosaic.jpg"), 1u);
}

TEST(CwlSourceTest, ResolvesStepOutputsAcrossSteps) {
  auto source = CwlSource::Parse(R"({
    "class": "Workflow",
    "inputs": [{"id": "raw", "type": "File",
                "default": {"class": "File", "location": "/cwl/raw.dat",
                            "hiway:size_bytes": 1024}}],
    "outputs": [{"id": "final", "type": "File",
                 "outputSource": "second/result"}],
    "steps": [
      {"id": "first",
       "run": {"class": "CommandLineTool", "baseCommand": "gen",
               "inputs": [{"id": "src", "type": "File"}],
               "outputs": [{"id": "mid", "type": "File",
                            "hiway:location": "/cwl/mid.dat",
                            "hiway:size_bytes": 2048}]},
       "in": [{"id": "src", "source": "raw"}], "out": ["mid"]},
      {"id": "second",
       "run": {"class": "CommandLineTool", "baseCommand": "sum",
               "inputs": [{"id": "mid", "type": "File"}],
               "outputs": [{"id": "result", "type": "File",
                            "hiway:location": "/cwl/out.dat",
                            "hiway:size_bytes": 4096}]},
       "in": [{"id": "mid", "source": "first/mid"}], "out": ["result"]}
    ]})");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks->size(), 2u);
  const TaskSpec& second = (*tasks)[1];
  EXPECT_EQ(second.signature, "sum");
  ASSERT_EQ(second.input_files.size(), 1u);
  EXPECT_EQ(second.input_files[0], "/cwl/mid.dat");
  EXPECT_EQ((*source)->Targets(),
            std::vector<std::string>{"/cwl/out.dat"});
}

// Negative-case table: every malformed document must fail with an error
// naming the offending element, never crash (the cwl fuzz target holds
// the same invariant under mutation).
struct CwlErrorCase {
  const char* name;
  const char* document;
  const char* expect;  // substring of the error message
};

class CwlErrorTest : public ::testing::TestWithParam<CwlErrorCase> {};

TEST_P(CwlErrorTest, RejectsWithOffendingElementNamed) {
  const CwlErrorCase& c = GetParam();
  auto source = CwlSource::Parse(c.document);
  ASSERT_FALSE(source.ok()) << c.name;
  EXPECT_NE(source.status().ToString().find(c.expect), std::string::npos)
      << c.name << ": got " << source.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    MalformedDocuments, CwlErrorTest,
    ::testing::Values(
        CwlErrorCase{"not_json", "cwlVersion: v1.2", "JSON error at line 1"},
        CwlErrorCase{"wrong_class",
                     R"({"class": "CommandLineTool", "steps": []})",
                     "class"},
        CwlErrorCase{"step_without_run",
                     R"({"class": "Workflow", "inputs": [], "outputs": [],
                         "steps": [{"id": "s1", "in": [], "out": ["x"]}]})",
                     "s1"},
        CwlErrorCase{"unknown_source",
                     R"({"class": "Workflow", "inputs": [], "outputs": [],
                         "steps": [{"id": "s1",
                           "run": {"class": "CommandLineTool",
                                   "baseCommand": "t",
                                   "outputs": [{"id": "o", "type": "File",
                                     "hiway:location": "/cwl/o"}]},
                           "in": [{"id": "a", "source": "nowhere"}],
                           "out": ["o"]}]})",
                     "nowhere"},
        CwlErrorCase{"duplicate_step_id",
                     R"({"class": "Workflow", "inputs": [], "outputs": [],
                         "steps": [
                           {"id": "s1",
                            "run": {"class": "CommandLineTool",
                                    "baseCommand": "t",
                                    "outputs": [{"id": "o", "type": "File",
                                      "hiway:location": "/cwl/o1"}]},
                            "in": [], "out": ["o"]},
                           {"id": "s1",
                            "run": {"class": "CommandLineTool",
                                    "baseCommand": "t",
                                    "outputs": [{"id": "o", "type": "File",
                                      "hiway:location": "/cwl/o2"}]},
                            "in": [], "out": ["o"]}]})",
                     "s1"},
        CwlErrorCase{"unknown_output_source",
                     R"({"class": "Workflow", "inputs": [],
                         "outputs": [{"id": "f", "type": "File",
                                      "outputSource": "ghost/o"}],
                         "steps": [{"id": "s1",
                           "run": {"class": "CommandLineTool",
                                   "baseCommand": "t",
                                   "outputs": [{"id": "o", "type": "File",
                                     "hiway:location": "/cwl/o"}]},
                           "in": [], "out": ["o"]}]})",
                     "ghost/o"},
        CwlErrorCase{"negative_size",
                     R"({"class": "Workflow",
                         "inputs": [{"id": "raw", "type": "File",
                           "default": {"class": "File",
                                       "location": "/cwl/raw",
                                       "hiway:size_bytes": -5}}],
                         "outputs": [], "steps": []})",
                     "size_bytes"}),
    [](const ::testing::TestParamInfo<CwlErrorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hiway
