// Tests for the programmatic DAX generation API, including the round trip
// through the DaxSource parser.

#include "src/lang/dax_builder.h"

#include <gtest/gtest.h>

#include "src/lang/dax_source.h"

namespace hiway {
namespace {

TEST(DaxBuilderTest, BuildsDiamondThatParses) {
  DaxBuilder dax("diamond");
  dax.AddJob("preprocess")
      .Argument("-i f.a -o f.b1 -o f.b2")
      .Input("f.a", 1 << 20)
      .Output("f.b1", 512 << 10)
      .Output("f.b2", 512 << 10);
  dax.AddJob("findrange").Input("f.b1").Output("f.c1");
  dax.AddJob("findrange").Input("f.b2").Output("f.c2");
  dax.AddJob("analyze").Input("f.c1").Input("f.c2").Output("f.d");
  EXPECT_EQ(dax.job_count(), 4u);
  auto xml = dax.ToXml();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  auto source = DaxSource::Parse(*xml);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->name(), "diamond");
  EXPECT_EQ((*source)->task_count(), 4u);
  ASSERT_EQ((*source)->required_inputs().size(), 1u);
  EXPECT_EQ((*source)->required_inputs()[0].first, "/dax/f.a");
  EXPECT_EQ((*source)->required_inputs()[0].second, 1 << 20);
  EXPECT_EQ((*source)->Targets(), std::vector<std::string>{"/dax/f.d"});
  // Declared sizes survive the round trip.
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(*(*tasks)[0].outputs[0].size_bytes, 512 << 10);
  EXPECT_NE((*tasks)[0].command.find("-i f.a"), std::string::npos);
}

TEST(DaxBuilderTest, EmitsExplicitDependencyEdges) {
  DaxBuilder dax("chain");
  dax.AddJob("a").Output("x");
  dax.AddJob("b").Input("x").Output("y");
  auto xml = dax.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_NE(xml->find("<child ref=\"ID00002\">"), std::string::npos);
  EXPECT_NE(xml->find("<parent ref=\"ID00001\"/>"), std::string::npos);
}

TEST(DaxBuilderTest, EscapesXmlMetacharacters) {
  DaxBuilder dax("weird & <name>");
  dax.AddJob("tool").Argument("--flag=\"<&>\"").Output("out");
  auto xml = dax.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml->find("& <"), std::string::npos);  // raw metachars gone
  auto source = DaxSource::Parse(*xml);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->name(), "weird & <name>");
  auto tasks = (*source)->Init();
  EXPECT_NE((*tasks)[0].command.find("--flag=\"<&>\""), std::string::npos);
}

TEST(DaxBuilderTest, RejectsTwoProducersOfOneFile) {
  DaxBuilder dax("conflict");
  dax.AddJob("a").Output("same");
  dax.AddJob("b").Output("same");
  auto xml = dax.ToXml();
  EXPECT_TRUE(xml.status().IsInvalidArgument());
  EXPECT_NE(xml.status().message().find("same"), std::string::npos);
}

TEST(DaxBuilderTest, RejectsReadWriteOfSameFile) {
  DaxBuilder dax("cycle");
  dax.AddJob("a").Input("f").Output("f");
  EXPECT_TRUE(dax.ToXml().status().IsInvalidArgument());
}

TEST(DaxBuilderTest, FluentReferencesStayValidAcrossAddJob) {
  DaxBuilder dax("stable");
  DaxJobBuilder& first = dax.AddJob("first");
  dax.AddJob("second").Output("s");
  first.Output("f");  // mutate after later AddJob calls
  auto xml = dax.ToXml();
  ASSERT_TRUE(xml.ok());
  auto source = DaxSource::Parse(*xml);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->Targets().size(), 2u);
}

}  // namespace
}  // namespace hiway
