// Tests for the simulated HDFS: placement invariants, locality metadata,
// data movement costs, failures and re-replication.

#include "src/hdfs/dfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/strings.h"

namespace hiway {
namespace {

struct DfsRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Dfs> dfs;

  explicit DfsRig(int nodes, DfsOptions options = DfsOptions{},
                  double s3_mbps = 0.0) {
    NodeSpec node;
    node.disk_bw_mbps = 100.0;
    node.nic_bw_mbps = 100.0;
    ClusterSpec spec = ClusterSpec::Uniform(nodes, node, 1000.0);
    spec.s3_bw_mbps = s3_mbps;
    cluster = std::make_unique<Cluster>(&engine, &net, spec);
    dfs = std::make_unique<Dfs>(cluster.get(), options);
  }
};

TEST(DfsTest, IngestAndStat) {
  DfsRig rig(4);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 100 << 20).ok());
  auto info = rig.dfs->Stat("/a");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size_bytes, 100 << 20);
  EXPECT_EQ(info->blocks.size(), 1u);  // < 128 MB block size
  EXPECT_TRUE(rig.dfs->Exists("/a"));
  EXPECT_FALSE(rig.dfs->Exists("/b"));
  EXPECT_TRUE(rig.dfs->Stat("/b").status().IsNotFound());
}

TEST(DfsTest, FilesSplitIntoBlocks) {
  DfsOptions options;
  options.block_size_bytes = 64 << 20;
  DfsRig rig(4, options);
  ASSERT_TRUE(rig.dfs->IngestFile("/big", 200 << 20).ok());
  auto info = rig.dfs->Stat("/big");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->blocks.size(), 4u);  // 64+64+64+8
  int64_t total = 0;
  for (const DfsBlock& b : info->blocks) total += b.size_bytes;
  EXPECT_EQ(total, 200 << 20);
  EXPECT_EQ(info->blocks.back().size_bytes, 8 << 20);
}

TEST(DfsTest, ReplicasAreDistinctNodes) {
  DfsOptions options;
  options.replication = 3;
  DfsRig rig(8, options);
  for (int i = 0; i < 20; ++i) {
    std::string path = StrFormat("/f%d", i);
    ASSERT_TRUE(rig.dfs->IngestFile(path, 10 << 20).ok());
    auto info = rig.dfs->Stat(path);
    for (const DfsBlock& block : info->blocks) {
      std::set<NodeId> distinct(block.replicas.begin(),
                                block.replicas.end());
      EXPECT_EQ(distinct.size(), 3u);
    }
  }
}

TEST(DfsTest, ReplicationClampedToClusterSize) {
  DfsOptions options;
  options.replication = 5;
  DfsRig rig(2, options);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 1 << 20).ok());
  EXPECT_EQ(rig.dfs->Stat("/a")->blocks[0].replicas.size(), 2u);
}

TEST(DfsTest, FavoredNodeGetsFirstReplica) {
  DfsRig rig(6);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 10 << 20, NodeId{3}).ok());
  EXPECT_EQ(rig.dfs->Stat("/a")->blocks[0].replicas.front(), 3);
}

TEST(DfsTest, FirstDatanodeExcludesMasters) {
  DfsOptions options;
  options.first_datanode = 2;
  options.replication = 3;
  DfsRig rig(6, options);
  for (int i = 0; i < 10; ++i) {
    std::string path = StrFormat("/f%d", i);
    ASSERT_TRUE(rig.dfs->IngestFile(path, 10 << 20, NodeId{0}).ok());
    auto info = rig.dfs->Stat(path);
    ASSERT_TRUE(info.ok());
    for (NodeId replica : info->blocks[0].replicas) {
      EXPECT_GE(replica, 2);
    }
  }
  EXPECT_EQ(rig.dfs->StoredBytes(0), 0);
  EXPECT_EQ(rig.dfs->StoredBytes(1), 0);
}

TEST(DfsTest, LocalBytesMatchesPlacement) {
  DfsRig rig(4);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 10 << 20, NodeId{1}).ok());
  EXPECT_EQ(rig.dfs->LocalBytes("/a", 1), 10 << 20);
  int64_t total_local = 0;
  for (NodeId n = 0; n < 4; ++n) total_local += rig.dfs->LocalBytes("/a", n);
  EXPECT_EQ(total_local, 3 * (10 << 20));  // replication 3
  EXPECT_EQ(rig.dfs->LocalBytes("/missing", 0), 0);
}

TEST(DfsTest, DuplicateIngestRejected) {
  DfsRig rig(2);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 1).ok());
  EXPECT_TRUE(rig.dfs->IngestFile("/a", 1).IsAlreadyExists());
}

TEST(DfsTest, DeleteRemovesFile) {
  DfsRig rig(2);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 1).ok());
  ASSERT_TRUE(rig.dfs->Delete("/a").ok());
  EXPECT_FALSE(rig.dfs->Exists("/a"));
  EXPECT_TRUE(rig.dfs->Delete("/a").IsNotFound());
}

TEST(DfsTest, LocalReadIsDiskOnly) {
  DfsRig rig(2);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 100 << 20, NodeId{0}).ok());
  Status read_status = Status::RuntimeError("not called");
  rig.dfs->ReadToNode("/a", 0, [&](Status st) { read_status = st; });
  rig.engine.Run();
  EXPECT_TRUE(read_status.ok());
  // 100 MB at 100 MB/s disk = 1 s; no switch traffic.
  EXPECT_NEAR(rig.engine.Now(), 1.0, 1e-6);
  EXPECT_NEAR(rig.net.Stats(rig.cluster->switch_resource()).mean_rate, 0.0,
              1e-9);
  EXPECT_EQ(rig.dfs->counters().blocks_read_local, 1);
  EXPECT_EQ(rig.dfs->counters().blocks_read_remote, 0);
}

TEST(DfsTest, RemoteReadCrossesSwitch) {
  DfsOptions options;
  options.replication = 1;
  DfsRig rig(3, options);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 50 << 20, NodeId{0}).ok());
  bool done = false;
  rig.dfs->ReadToNode("/a", 2, [&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.dfs->counters().blocks_read_remote, 1);
  EXPECT_GT(rig.net.Stats(rig.cluster->switch_resource()).peak_rate, 0.0);
}

TEST(DfsTest, WriteCreatesReplicatedFile) {
  DfsRig rig(4);
  Status write_status = Status::RuntimeError("not called");
  rig.dfs->WriteFromNode("/out", 64 << 20, 1,
                         [&](Status st) { write_status = st; });
  rig.engine.Run();
  EXPECT_TRUE(write_status.ok());
  auto info = rig.dfs->Stat("/out");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks[0].replicas.size(), 3u);
  EXPECT_EQ(info->blocks[0].replicas.front(), 1);  // writer-local first
  EXPECT_GT(rig.engine.Now(), 0.0);
}

TEST(DfsTest, WriteOfExistingPathFails) {
  DfsRig rig(2);
  ASSERT_TRUE(rig.dfs->IngestFile("/x", 1).ok());
  Status st = Status::OK();
  rig.dfs->WriteFromNode("/x", 1, 0, [&](Status s) { st = s; });
  rig.engine.Run();
  EXPECT_TRUE(st.IsAlreadyExists());
}

TEST(DfsTest, ZeroByteWriteAndRead) {
  DfsRig rig(2);
  bool wrote = false;
  rig.dfs->WriteFromNode("/empty", 0, 0, [&](Status st) {
    EXPECT_TRUE(st.ok());
    wrote = true;
  });
  rig.engine.Run();
  EXPECT_TRUE(wrote);
  bool read = false;
  rig.dfs->ReadToNode("/empty", 1, [&](Status st) {
    EXPECT_TRUE(st.ok());
    read = true;
  });
  rig.engine.Run();
  EXPECT_TRUE(read);
}

TEST(DfsTest, ReadOfMissingFileFailsAsync) {
  DfsRig rig(2);
  Status st = Status::OK();
  rig.dfs->ReadToNode("/nope", 0, [&](Status s) { st = s; });
  rig.engine.Run();
  EXPECT_TRUE(st.IsNotFound());
}

TEST(DfsTest, NodeDeathLosesReplicasButDataSurvives) {
  DfsRig rig(4);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 10 << 20).ok());
  NodeId victim = rig.dfs->Stat("/a")->blocks[0].replicas[0];
  rig.dfs->KillNode(victim);
  EXPECT_TRUE(rig.dfs->AllFilesReadable());  // 2 replicas left
  EXPECT_EQ(rig.dfs->Stat("/a")->blocks[0].replicas.size(), 2u);
  EXPECT_EQ(rig.dfs->LocalBytes("/a", victim), 0);
}

TEST(DfsTest, LosingAllReplicasIsDetected) {
  DfsOptions options;
  options.replication = 1;
  DfsRig rig(2, options);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 10 << 20).ok());
  NodeId holder = rig.dfs->Stat("/a")->blocks[0].replicas[0];
  rig.dfs->KillNode(holder);
  EXPECT_FALSE(rig.dfs->AllFilesReadable());
  Status st = Status::OK();
  rig.dfs->ReadToNode("/a", holder == 0 ? 1 : 0,
                      [&](Status s) { st = s; });
  rig.engine.Run();
  EXPECT_TRUE(st.IsIoError());
}

TEST(DfsTest, ReReplicationRestoresTargetFactor) {
  DfsRig rig(5);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 10 << 20).ok());
  NodeId victim = rig.dfs->Stat("/a")->blocks[0].replicas[0];
  rig.dfs->KillNode(victim);
  rig.dfs->ReReplicate();
  auto info = rig.dfs->Stat("/a");
  EXPECT_EQ(info->blocks[0].replicas.size(), 3u);
  for (NodeId n : info->blocks[0].replicas) EXPECT_NE(n, victim);
  EXPECT_GT(rig.dfs->counters().blocks_re_replicated, 0);
}

TEST(DfsTest, ExternalFilesStreamFromS3) {
  DfsRig rig(2, DfsOptions{}, /*s3_mbps=*/500.0);
  ASSERT_TRUE(rig.dfs->RegisterExternalFile("/s3/reads", 100 << 20).ok());
  EXPECT_TRUE(rig.dfs->Exists("/s3/reads"));
  EXPECT_EQ(rig.dfs->LocalBytes("/s3/reads", 0), 0);
  bool done = false;
  rig.dfs->ReadToNode("/s3/reads", 0, [&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  rig.engine.Run();
  EXPECT_TRUE(done);
  // Bottleneck: 100 MB/s NIC (S3 uplink is 500) -> 1 s.
  EXPECT_NEAR(rig.engine.Now(), 1.0, 1e-6);
}

TEST(DfsTest, ExternalFileRequiresS3Uplink) {
  DfsRig rig(2);  // no S3
  EXPECT_TRUE(rig.dfs->RegisterExternalFile("/s3/x", 1)
                  .IsFailedPrecondition());
}

TEST(DfsTest, ListFilesSorted) {
  DfsRig rig(2);
  ASSERT_TRUE(rig.dfs->IngestFile("/b", 1).ok());
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 1).ok());
  EXPECT_EQ(rig.dfs->ListFiles(), (std::vector<std::string>{"/a", "/b"}));
}

TEST(DfsTest, StoredBytesAccountsReplicas) {
  DfsOptions options;
  options.replication = 2;
  DfsRig rig(2, options);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 10 << 20).ok());
  EXPECT_EQ(rig.dfs->StoredBytes(0) + rig.dfs->StoredBytes(1),
            2 * (10 << 20));
}

// Property sweep: placement is balanced within a reasonable factor.
class DfsBalanceTest : public ::testing::TestWithParam<int> {};

TEST_P(DfsBalanceTest, PlacementRoughlyBalanced) {
  int nodes = GetParam();
  DfsOptions options;
  options.seed = 1234;
  DfsRig rig(nodes, options);
  const int files = 40 * nodes;
  for (int i = 0; i < files; ++i) {
    ASSERT_TRUE(rig.dfs->IngestFile(StrFormat("/f%d", i), 1 << 20).ok());
  }
  int64_t min_bytes = INT64_MAX, max_bytes = 0;
  for (NodeId n = 0; n < nodes; ++n) {
    int64_t b = rig.dfs->StoredBytes(n);
    min_bytes = std::min(min_bytes, b);
    max_bytes = std::max(max_bytes, b);
  }
  EXPECT_GT(min_bytes, 0);
  EXPECT_LT(max_bytes, 2 * min_bytes + (10 << 20));
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, DfsBalanceTest,
                         ::testing::Values(4, 8, 16, 24));

}  // namespace
}  // namespace hiway
