// Tests for elastic cluster membership (docs/elastic-cluster.md):
// runtime node join/drain/decommission in the RM, the autoscaler policy
// engine and its poll loop, spot revocation with graceful drain (warned
// work requeues uncharged), and the churn-safety of the data services —
// staging-cache migration, DFS rescue + re-replication, result-cache
// sweeps, and post-churn locality metadata.

#include "src/elastic/elastic_cluster.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/elastic/autoscaler.h"
#include "src/infra/karamel.h"
#include "src/service/workflow_service.h"
#include "src/sim/fault_injector.h"
#include "src/yarn/rm_scheduler.h"

namespace hiway {
namespace {

// ---------------------------------------------------------------------
// Autoscaler policy presets.
// ---------------------------------------------------------------------

TEST(AutoscalerPolicyTest, ResolvesPresetsAndRejectsUnknownNames) {
  for (const char* name : {"off", "fixed", ""}) {
    auto p = AutoscalerPolicyByName(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_FALSE(p->enabled);
  }
  for (const char* name : {"reactive", "aggressive", "conservative"}) {
    auto p = AutoscalerPolicyByName(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_TRUE(p->enabled);
    EXPECT_EQ(p->name, name);
    EXPECT_GT(p->poll_s, 0.0);
    EXPECT_GT(p->scale_out_step, 0);
  }
  auto bad = AutoscalerPolicyByName("yolo");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("yolo"), std::string::npos);
}

// ---------------------------------------------------------------------
// RM membership: join, drain, decommission (unit level).
// ---------------------------------------------------------------------

class RecordingAm : public AmCallbacks {
 public:
  void OnContainerAllocated(const Container& container,
                            int64_t cookie) override {
    allocations.push_back({container, cookie});
  }
  void OnContainerLost(const Container& container,
                       ContainerLossReason reason) override {
    lost.push_back(container);
    loss_reasons.push_back(reason);
  }
  void OnNodeDraining(NodeId node, double deadline) override {
    drain_notices.emplace_back(node, deadline);
  }
  std::vector<std::pair<Container, int64_t>> allocations;
  std::vector<Container> lost;
  std::vector<ContainerLossReason> loss_reasons;
  std::vector<std::pair<NodeId, double>> drain_notices;
};

struct MembershipRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ResourceManager> rm;
  RecordingAm am;
  ApplicationId app = -1;

  explicit MembershipRig(int nodes, int cores = 4, double memory_mb = 4096) {
    NodeSpec node;
    node.cores = cores;
    node.memory_mb = memory_mb;
    cluster = std::make_unique<Cluster>(
        &engine, &net, ClusterSpec::Uniform(nodes, node, 1000.0));
    rm = std::make_unique<ResourceManager>(cluster.get(), YarnOptions{});
    auto result = rm->RegisterApplication("test-app", &am, 1, 512);
    EXPECT_TRUE(result.ok());
    app = *result;
  }
};

TEST(MembershipTest, JoinedNodeAcceptsPlacements) {
  MembershipRig rig(1, 2, 2048);
  // The single node hosts the AM (1 of 2 cores); a 2-core request cannot
  // fit anywhere yet.
  ContainerRequest request;
  request.vcores = 2;
  request.memory_mb = 1024;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.RunUntil(10.0);
  EXPECT_TRUE(rig.am.allocations.empty());

  // A node joins at runtime; the pending request lands on it.
  NodeSpec spec;
  spec.cores = 2;
  spec.memory_mb = 2048;
  NodeId id = rig.cluster->AddNode(spec);
  rig.rm->AddNode(id);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.node, id);
  EXPECT_TRUE(rig.rm->IsNodeAlive(id));
}

TEST(MembershipTest, DrainingNodeStopsReceivingWork) {
  MembershipRig rig(2, 2, 2048);
  rig.rm->BeginDrain(1, /*deadline=*/120.0);
  EXPECT_TRUE(rig.rm->IsNodeDraining(1));
  ASSERT_EQ(rig.am.drain_notices.size(), 1u);
  EXPECT_EQ(rig.am.drain_notices[0].first, 1);
  EXPECT_DOUBLE_EQ(rig.am.drain_notices[0].second, 120.0);

  // Node 0 has 1 free core (AM holds the other); node 1 is empty but
  // draining, so both 1-core requests pile onto node 0 and the second
  // waits for the first's release rather than landing on node 1.
  ContainerRequest request;
  request.vcores = 1;
  request.memory_mb = 512;
  rig.rm->SubmitRequest(rig.app, request);
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.RunUntil(30.0);
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.node, 0);
  EXPECT_EQ(rig.rm->pending_requests(), 1);
}

TEST(MembershipTest, DecommissionVacatesWithUnchargedDrainReason) {
  MembershipRig rig(2, 4, 4096);
  ContainerRequest request;
  request.vcores = 1;
  request.memory_mb = 512;
  request.preferred_node = 1;
  request.strict_locality = true;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);

  rig.rm->BeginDrain(1, /*deadline=*/60.0);
  ASSERT_TRUE(rig.rm->DecommissionNode(1));
  ASSERT_EQ(rig.am.lost.size(), 1u);
  EXPECT_EQ(rig.am.loss_reasons[0], ContainerLossReason::kDrained);
  EXPECT_FALSE(rig.rm->IsNodeAlive(1));
  EXPECT_FALSE(rig.rm->IsNodeDraining(1));
  EXPECT_EQ(rig.rm->counters().drained_containers, 1);
  EXPECT_EQ(rig.rm->counters().lost_containers, 0);
}

TEST(MembershipTest, DecommissionRefusesNodesHostingAnAm) {
  MembershipRig rig(2, 4, 4096);
  auto am_node = rig.rm->AmNode(rig.app);
  ASSERT_TRUE(am_node.ok());
  EXPECT_FALSE(rig.rm->DecommissionNode(*am_node));
  EXPECT_TRUE(rig.rm->IsNodeAlive(*am_node));
}

// ---------------------------------------------------------------------
// Deployment helpers for the end-to-end suites.
// ---------------------------------------------------------------------

Result<std::unique_ptr<Deployment>> ElasticDeployment(
    const ChefAttributes& extra = {}) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "6");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("snv/chunks", "8");
  karamel.SetAttribute("snv/chunk_mb", "32");
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(ElasticInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  return karamel.Converge();
}

std::map<std::string, int64_t> DfsSnapshot(Dfs* dfs) {
  std::map<std::string, int64_t> files;
  for (const std::string& path : dfs->ListFiles()) {
    auto info = dfs->Stat(path);
    if (info.ok()) files[path] = info->size_bytes;
  }
  return files;
}

// ---------------------------------------------------------------------
// ElasticCluster control plane.
// ---------------------------------------------------------------------

TEST(ElasticClusterTest, RecipeBuildsControlPlaneWithClampedBounds) {
  auto d = ElasticDeployment({{"elastic/autoscaler", "reactive"},
                              {"elastic/min_nodes", "2"},
                              {"elastic/max_nodes", "12"}});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_NE((*d)->elastic, nullptr);
  const ElasticOptions& opts = (*d)->elastic->options();
  EXPECT_TRUE(opts.policy.enabled);
  EXPECT_EQ(opts.policy.name, "reactive");
  EXPECT_EQ(opts.policy.min_nodes, 2);
  EXPECT_EQ(opts.policy.max_nodes, 12);
  // Joiner hardware mirrors the converged workers.
  EXPECT_EQ(opts.node_template.cores, 4);

  auto bad = ElasticDeployment({{"elastic/autoscaler", "warp-speed"}});
  EXPECT_FALSE(bad.ok());
}

TEST(ElasticClusterTest, AutoscalerGrowsOnBacklogAndShrinksWhenIdle) {
  // Start small with headroom: a parallel workflow backlogs the two
  // initial workers, the reactive policy grows the fleet, and after the
  // run drains the idle joiners are retired down to min_nodes.
  auto d = ElasticDeployment({{"cluster/workers", "2"},
                              {"elastic/autoscaler", "reactive"},
                              {"elastic/min_nodes", "2"},
                              {"elastic/max_nodes", "8"},
                              {"snv/chunks", "12"}});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ElasticCluster* elastic = (*d)->elastic.get();
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());

  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->state, SubmissionState::kSucceeded);

  const ElasticStats& stats = elastic->stats();
  EXPECT_GT(stats.scale_out_actions, 0);
  EXPECT_GT(stats.nodes_added, 0);
  EXPECT_GT(stats.node_seconds, 0.0);
  EXPECT_GE(elastic->LiveNodes(), 2);
  EXPECT_TRUE((*d)->dfs->AllFilesReadable());
}

TEST(ElasticClusterTest, AutoscalerRetiresIdleWorkersDownToMinNodes) {
  auto d = ElasticDeployment({{"elastic/autoscaler", "reactive"},
                              {"elastic/min_nodes", "3"}});
  ASSERT_TRUE(d.ok());
  ElasticCluster* elastic = (*d)->elastic.get();
  // No workload, so every worker is idle from the start. A synthetic
  // activity window keeps the poll loop alive long enough to retire
  // the surplus; it quiesces when the window closes.
  elastic->SetActiveCheck(
      [d = d->get()] { return d->engine.Now() < 600.0; });
  elastic->Start();
  (*d)->engine.Run();
  const ElasticStats& stats = elastic->stats();
  EXPECT_GT(stats.scale_in_actions, 0);
  EXPECT_GT(stats.nodes_decommissioned, 0);
  EXPECT_EQ(elastic->LiveNodes(), 3);
  // Zero data loss through every graceful retirement.
  EXPECT_TRUE((*d)->dfs->AllFilesReadable());
}

TEST(ElasticClusterTest, PollLoopQuiescesWithTheWorkload) {
  auto d = ElasticDeployment({{"elastic/autoscaler", "reactive"}});
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());
  // RunToCompletion returning OK means the engine drained: the poll loop
  // stopped rescheduling itself once the workload went idle.
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  SUCCEED();
}

// ---------------------------------------------------------------------
// Spot revocation end-to-end: graceful drain, uncharged requeues,
// correct outputs.
// ---------------------------------------------------------------------

TEST(ElasticClusterTest, WarnedRevocationFinishesWorkflowWithoutCharges) {
  auto d = ElasticDeployment({{"hiway/cache_staging_mb", "0"}});
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());

  FaultInjector injector(&(*d)->engine, /*seed=*/13);
  (*service)->InstallFaultHandlers(&injector);
  ASSERT_TRUE(injector.ArmSpec("spot-revoke@40:warn=120").ok());

  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->state, SubmissionState::kSucceeded);
  EXPECT_EQ(injector.counters().spot_revocations, 1);
  EXPECT_EQ((*d)->elastic->stats().nodes_revoked, 1);

  // Drained requeues are exempt from the attempt charge: requeued tasks
  // show up as tasks_drained, not failed_attempts.
  EXPECT_EQ(rec->report.failed_attempts, 0);
  // The warned departure lost no data.
  EXPECT_TRUE((*d)->dfs->AllFilesReadable());
  for (const std::string& path : (*d)->dfs->ListFiles()) {
    EXPECT_TRUE((*d)->dfs->FileReadable(path)) << path;
  }
}

TEST(ElasticClusterTest, RevocationStormMatchesFixedFleetOutputs) {
  auto run = [](const std::string& faults) {
    auto d = ElasticDeployment({{"cluster/workers", "8"}});
    EXPECT_TRUE(d.ok());
    auto service =
        WorkflowService::Create(d->get(), WorkflowServiceOptions{});
    EXPECT_TRUE(service.ok());
    FaultInjector injector(&(*d)->engine, /*seed=*/17);
    if (!faults.empty()) {
      (*service)->InstallFaultHandlers(&injector);
      EXPECT_TRUE(injector.ArmSpec(faults).ok());
    }
    auto id = (*service)->SubmitStaged("snv-calling");
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE((*service)->RunToCompletion().ok());
    const SubmissionRecord* rec = (*service)->record(*id);
    EXPECT_EQ(rec->state, SubmissionState::kSucceeded);
    return DfsSnapshot((*d)->dfs.get());
  };
  std::map<std::string, int64_t> calm = run("");
  std::map<std::string, int64_t> storm =
      run("spot-revoke@30:warn=60, spot-revoke@45:warn=60, "
          "spot-revoke@60:warn=60");
  // Byte-identical namespace: same paths, same sizes, despite losing
  // three nodes mid-run.
  EXPECT_EQ(storm, calm);
}

// ---------------------------------------------------------------------
// Churn-safe data services (satellite: re-replication x staging cache
// x post-churn locality).
// ---------------------------------------------------------------------

TEST(ChurnDataServicesTest, DecommissionMigratesStagingAndReReplicates) {
  auto d = ElasticDeployment({{"hiway/cache_staging_mb", "0"},
                              {"dfs/replication", "2"}});
  ASSERT_TRUE(d.ok());
  ASSERT_NE((*d)->staging_cache, nullptr);
  StagingCache* staging = (*d)->staging_cache.get();
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  ASSERT_EQ((*service)->record(*id)->state, SubmissionState::kSucceeded);

  // Find a worker with staged bytes and retire it gracefully.
  NodeId victim = kInvalidNode;
  for (NodeId n = (*d)->cluster->num_nodes() - 1; n >= 0; --n) {
    if (staging->NodeBytes(n) > 0 && (*d)->rm->containers_on(n) == 0) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  int64_t victim_bytes = staging->NodeBytes(victim);
  ASSERT_GT(victim_bytes, 0);
  int64_t total_before = staging->TotalBytes();

  ASSERT_TRUE((*d)->elastic->DecommissionNode(victim));

  // Unpinned staged inputs moved to survivors instead of vanishing.
  EXPECT_EQ(staging->NodeBytes(victim), 0);
  EXPECT_GT(staging->stats().migrated, 0);
  EXPECT_EQ(staging->TotalBytes(), total_before);
  // Graceful retirement: every file still readable, and re-replication
  // restored the target replica count off the dead node.
  EXPECT_TRUE((*d)->dfs->AllFilesReadable());
  for (const std::string& path : (*d)->dfs->ListFiles()) {
    auto info = (*d)->dfs->Stat(path);
    ASSERT_TRUE(info.ok());
    if (info->external || info->size_bytes == 0) continue;
    for (const DfsBlock& block : info->blocks) {
      EXPECT_GE(static_cast<int>(block.replicas.size()), 2) << path;
      for (NodeId replica : block.replicas) {
        EXPECT_NE(replica, victim) << path;
      }
    }
    // Post-churn locality metadata: the data-aware scheduler's signal
    // reports zero local bytes on the vanished node.
    EXPECT_EQ((*d)->dfs->LocalBytes(path, victim), 0) << path;
  }
}

TEST(ChurnDataServicesTest, UnwarnedLossEvictsOnlyDestroyedCacheEntries) {
  // Replication 1 + a hard kill destroys some task outputs; the result
  // cache's churn sweep must evict exactly those entries so no sealed
  // entry references a vanished replica.
  auto d = ElasticDeployment({{"hiway/cache_results", "on"},
                              {"dfs/replication", "1"}});
  ASSERT_TRUE(d.ok());
  ASSERT_NE((*d)->result_cache, nullptr);
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  ASSERT_EQ((*service)->record(*id)->state, SubmissionState::kSucceeded);
  ASSERT_GT((*d)->result_cache->size(), 0u);

  // Hard-kill a worker holding blocks (no drain, no rescue).
  NodeId victim = kInvalidNode;
  for (NodeId n = (*d)->cluster->num_nodes() - 1; n >= 0; --n) {
    if ((*d)->dfs->StoredBytes(n) > 0 && (*d)->rm->containers_on(n) == 0) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  (*d)->rm->KillNode(victim);
  (*d)->dfs->KillNode(victim);
  (*d)->dfs->ReReplicate();

  int64_t evicted = (*d)->result_cache->EvictUnreadable();
  // With replication 1 the kill destroyed at least one file outright.
  EXPECT_GT(evicted, 0);
  // After the sweep the audit finds no dangling entries.
  EXPECT_EQ((*d)->result_cache->AuditAgainstDfs(), 0);

  // The graceful counterpart: decommissioning another node via the
  // elastic path rescues sole replicas, so its sweep evicts nothing.
  NodeId graceful = kInvalidNode;
  for (NodeId n = (*d)->cluster->num_nodes() - 1; n >= 0; --n) {
    if (n == victim || !(*d)->rm->IsNodeAlive(n)) continue;
    if ((*d)->dfs->StoredBytes(n) > 0 && (*d)->rm->containers_on(n) == 0) {
      graceful = n;
      break;
    }
  }
  ASSERT_NE(graceful, kInvalidNode);
  int64_t before = (*d)->result_cache->stats().churn_evictions;
  ASSERT_TRUE((*d)->elastic->DecommissionNode(graceful));
  EXPECT_EQ((*d)->result_cache->stats().churn_evictions, before);
  EXPECT_EQ((*d)->result_cache->AuditAgainstDfs(), 0);
}

}  // namespace
}  // namespace hiway
