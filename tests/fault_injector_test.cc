// Tests for the fault-injection harness: spec grammar, one-shot and
// recurring scheduling, seeded-random target choice, and the DFS
// read-fault hook.

#include "src/sim/fault_injector.h"

#include <gtest/gtest.h>

#include "src/sim/engine.h"

namespace hiway {
namespace {

TEST(FaultSpecGrammarTest, ParsesEveryClauseType) {
  auto specs = ParseFaultSpecs(
      "kill-node@120, kill-am-node@60:sub=2, am-crash@45, "
      "fail-container:rate=0.2:every=30:until=600, "
      "hdfs-error:rate=0.05:until=300");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 5u);

  EXPECT_EQ((*specs)[0].type, FaultType::kKillNode);
  EXPECT_DOUBLE_EQ((*specs)[0].at, 120.0);

  EXPECT_EQ((*specs)[1].type, FaultType::kKillAmNode);
  EXPECT_DOUBLE_EQ((*specs)[1].at, 60.0);
  EXPECT_EQ((*specs)[1].submission, 2);

  EXPECT_EQ((*specs)[2].type, FaultType::kAmCrash);
  EXPECT_DOUBLE_EQ((*specs)[2].at, 45.0);

  EXPECT_EQ((*specs)[3].type, FaultType::kFailContainer);
  EXPECT_DOUBLE_EQ((*specs)[3].rate, 0.2);
  EXPECT_DOUBLE_EQ((*specs)[3].every, 30.0);
  EXPECT_DOUBLE_EQ((*specs)[3].until, 600.0);

  EXPECT_EQ((*specs)[4].type, FaultType::kHdfsError);
  EXPECT_DOUBLE_EQ((*specs)[4].rate, 0.05);
}

TEST(FaultSpecGrammarTest, AtKeyEqualsAtSignSyntax) {
  auto a = ParseFaultSpecs("kill-node@75");
  auto b = ParseFaultSpecs("kill-node:at=75");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ((*a)[0].at, (*b)[0].at);
}

TEST(FaultSpecGrammarTest, ParsesSpotRevoke) {
  auto specs = ParseFaultSpecs("spot-revoke@300:warn=120, spot-revoke@500");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].type, FaultType::kSpotRevoke);
  EXPECT_DOUBLE_EQ((*specs)[0].at, 300.0);
  EXPECT_DOUBLE_EQ((*specs)[0].warn, 120.0);
  // Without warn= the injector's default warning applies later.
  EXPECT_DOUBLE_EQ((*specs)[1].warn, -1.0);
}

TEST(FaultSpecGrammarTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSpecs("").ok());
  EXPECT_FALSE(ParseFaultSpecs("melt-cpu@10").ok());
  EXPECT_FALSE(ParseFaultSpecs("kill-node").ok());  // no at, no rate
  EXPECT_FALSE(ParseFaultSpecs("kill-node@abc").ok());
  EXPECT_FALSE(ParseFaultSpecs("kill-node:at").ok());  // not key=value
  EXPECT_FALSE(ParseFaultSpecs("kill-node:frequency=2").ok());
  EXPECT_FALSE(ParseFaultSpecs("hdfs-error@10").ok());  // needs rate
  EXPECT_FALSE(ParseFaultSpecs("fail-container:rate=0.5:every=0").ok());
}

TEST(FaultSpecGrammarTest, ErrorsNameTheOffendingToken) {
  // Unknown clause types, unknown parameters, and out-of-range values
  // all fail loudly with the offending token in the message.
  auto unknown_type = ParseFaultSpecs("kill-node@10, melt-cpu@20");
  ASSERT_FALSE(unknown_type.ok());
  EXPECT_NE(unknown_type.status().ToString().find("melt-cpu"),
            std::string::npos)
      << unknown_type.status().ToString();

  auto unknown_key = ParseFaultSpecs("kill-node@10:grace=5");
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_NE(unknown_key.status().ToString().find("grace"), std::string::npos)
      << unknown_key.status().ToString();

  auto bad_value = ParseFaultSpecs("hdfs-error:rate=banana");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().ToString().find("banana"), std::string::npos)
      << bad_value.status().ToString();
}

TEST(FaultSpecGrammarTest, RejectsMisusedWarnAndBadRates) {
  // warn= is spot-revoke-only.
  EXPECT_FALSE(ParseFaultSpecs("kill-node@10:warn=120").ok());
  EXPECT_FALSE(ParseFaultSpecs("am-crash@10:warn=0").ok());
  // Negative warning windows are nonsense.
  EXPECT_FALSE(ParseFaultSpecs("spot-revoke@10:warn=-5").ok());
  // A rate is a probability.
  EXPECT_FALSE(ParseFaultSpecs("hdfs-error:rate=1.5").ok());
  // Valid uses still parse.
  EXPECT_TRUE(ParseFaultSpecs("spot-revoke@10:warn=0").ok());
  EXPECT_TRUE(ParseFaultSpecs("spot-revoke:rate=0.1:every=60").ok());
}

TEST(FaultSpecGrammarTest, RejectsNonIntegerAndNonFiniteValues) {
  // Fuzz regression (tests/fuzz/corpus/faultspec/crash_node_1e300.txt):
  // node=1e300 went through an undefined float->int cast and armed the
  // injector with a garbage node id instead of failing the parse.
  auto huge_node = ParseFaultSpecs("kill-node@1:node=1e300");
  ASSERT_FALSE(huge_node.ok());
  EXPECT_NE(huge_node.status().ToString().find("node=1e300"),
            std::string::npos)
      << huge_node.status().ToString();
  EXPECT_NE(huge_node.status().ToString().find("integer id"),
            std::string::npos);

  EXPECT_FALSE(ParseFaultSpecs("kill-node@1:node=2.5").ok());
  EXPECT_FALSE(ParseFaultSpecs("kill-node@1:node=-3").ok());
  EXPECT_FALSE(ParseFaultSpecs("kill-am-node@1:sub=1e30").ok());

  // Non-finite times and rates must be refused, not scheduled.
  auto inf_at = ParseFaultSpecs("kill-node@inf");
  ASSERT_FALSE(inf_at.ok());
  EXPECT_NE(inf_at.status().ToString().find("finite"), std::string::npos)
      << inf_at.status().ToString();
  EXPECT_FALSE(ParseFaultSpecs("kill-node:at=nan").ok());
  EXPECT_FALSE(ParseFaultSpecs("hdfs-error:rate=nan").ok());
  EXPECT_FALSE(ParseFaultSpecs("kill-node@1:until=inf").ok());

  // In-range integral ids still parse.
  auto ok = ParseFaultSpecs("kill-node@1:node=7");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)[0].node, 7);
}

TEST(FaultInjectorTest, OneShotFiresAtTheScheduledTime) {
  SimEngine engine;
  FaultInjector injector(&engine);
  std::vector<std::pair<double, NodeId>> kills;
  FaultHandlers handlers;
  handlers.kill_node = [&](NodeId node) {
    kills.emplace_back(engine.Now(), node);
  };
  injector.SetHandlers(std::move(handlers));
  ASSERT_TRUE(injector.ArmSpec("kill-node@42:node=3").ok());
  engine.Run();
  ASSERT_EQ(kills.size(), 1u);
  EXPECT_DOUBLE_EQ(kills[0].first, 42.0);
  EXPECT_EQ(kills[0].second, 3);
  EXPECT_EQ(injector.counters().node_kills, 1);
}

TEST(FaultInjectorTest, RandomTargetComesFromTheAliveList) {
  SimEngine engine;
  FaultInjector injector(&engine, /*seed=*/7);
  NodeId killed = kInvalidNode;
  FaultHandlers handlers;
  handlers.list_nodes = [] { return std::vector<NodeId>{5}; };
  handlers.kill_node = [&](NodeId node) { killed = node; };
  injector.SetHandlers(std::move(handlers));
  ASSERT_TRUE(injector.ArmSpec("kill-node@1").ok());
  engine.Run();
  EXPECT_EQ(killed, 5);
}

TEST(FaultInjectorTest, RecurringFaultStopsWhenTheWorkloadDrains) {
  SimEngine engine;
  FaultInjector injector(&engine);
  int kills = 0;
  // Workload is active until t=100.
  FaultHandlers handlers;
  handlers.list_containers = [&] { return std::vector<int64_t>{1}; };
  handlers.fail_container = [&](int64_t) { ++kills; };
  handlers.active = [&] { return engine.Now() < 100.0; };
  injector.SetHandlers(std::move(handlers));
  // rate=1 every 10 s: deterministic, one kill per period while active.
  ASSERT_TRUE(injector.ArmSpec("fail-container:rate=1:every=10").ok());
  engine.Run();  // terminates because the chain stops after the drain
  EXPECT_EQ(kills, 9);  // t=10..90; at t=100 the workload is inactive
  EXPECT_EQ(injector.counters().container_kills, 9);
}

TEST(FaultInjectorTest, UntilBoundsARecurringFault) {
  SimEngine engine;
  FaultInjector injector(&engine);
  int kills = 0;
  FaultHandlers handlers;
  handlers.list_containers = [&] { return std::vector<int64_t>{1}; };
  handlers.fail_container = [&](int64_t) { ++kills; };
  injector.SetHandlers(std::move(handlers));
  ASSERT_TRUE(injector.ArmSpec("fail-container:rate=1:every=5:until=22").ok());
  engine.Run();
  EXPECT_EQ(kills, 4);  // t=5,10,15,20
}

TEST(FaultInjectorTest, ReadFaultHookHonorsRateAndWindow) {
  SimEngine engine;
  FaultInjector always(&engine);
  ASSERT_TRUE(always.ArmSpec("hdfs-error:rate=1:until=50").ok());
  EXPECT_TRUE(always.ShouldFailRead("/data/x", 0));
  EXPECT_EQ(always.counters().read_faults, 1);

  // Outside the window nothing fails.
  engine.ScheduleAt(60.0, [&] {
    EXPECT_FALSE(always.ShouldFailRead("/data/x", 0));
  });
  engine.Run();
  EXPECT_EQ(always.counters().read_faults, 1);

  FaultInjector never(&engine);
  ASSERT_TRUE(never.ArmSpec("hdfs-error:rate=0.0000001").ok());
  EXPECT_FALSE(never.ShouldFailRead("/data/y", 1));
}

TEST(FaultInjectorTest, FixedSeedReplaysTheSameFaultSequence) {
  auto run = [](uint64_t seed) {
    SimEngine engine;
    FaultInjector injector(&engine, seed);
    std::vector<double> kill_times;
    FaultHandlers handlers;
    handlers.list_containers = [&] { return std::vector<int64_t>{1}; };
    handlers.fail_container = [&](int64_t) {
      kill_times.push_back(engine.Now());
    };
    handlers.active = [&] { return engine.Now() < 200.0; };
    injector.SetHandlers(std::move(handlers));
    EXPECT_TRUE(injector.ArmSpec("fail-container:rate=0.5:every=10").ok());
    engine.Run();
    return kill_times;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(FaultInjectorTest, SpotRevokeUsesSpotListAndDefaultWarning) {
  SimEngine engine;
  FaultInjector injector(&engine, /*seed=*/3);
  std::vector<std::pair<NodeId, double>> revocations;
  FaultHandlers handlers;
  handlers.list_nodes = [] { return std::vector<NodeId>{1, 2, 3}; };
  handlers.list_spot_nodes = [] { return std::vector<NodeId>{7}; };
  handlers.revoke_node = [&](NodeId node, double warn_s) {
    revocations.emplace_back(node, warn_s);
  };
  injector.SetHandlers(std::move(handlers));
  ASSERT_TRUE(injector.ArmSpec("spot-revoke@30, spot-revoke@60:warn=45").ok());
  engine.Run();
  ASSERT_EQ(revocations.size(), 2u);
  // Targets come from the spot list, not the full node list.
  EXPECT_EQ(revocations[0].first, 7);
  EXPECT_EQ(revocations[1].first, 7);
  // No warn= -> the injector default (the 120 s EC2 notice).
  EXPECT_DOUBLE_EQ(revocations[0].second, 120.0);
  EXPECT_DOUBLE_EQ(revocations[1].second, 45.0);
  EXPECT_EQ(injector.counters().spot_revocations, 2);
}

TEST(FaultInjectorTest, SpotRevokeFallsBackToAliveListAndCliDefault) {
  SimEngine engine;
  FaultInjector injector(&engine, /*seed=*/3);
  injector.SetDefaultRevokeWarning(15.0);
  std::vector<std::pair<NodeId, double>> revocations;
  FaultHandlers handlers;
  handlers.list_nodes = [] { return std::vector<NodeId>{4}; };
  handlers.revoke_node = [&](NodeId node, double warn_s) {
    revocations.emplace_back(node, warn_s);
  };
  injector.SetHandlers(std::move(handlers));
  ASSERT_TRUE(injector.ArmSpec("spot-revoke@10").ok());
  engine.Run();
  ASSERT_EQ(revocations.size(), 1u);
  EXPECT_EQ(revocations[0].first, 4);
  EXPECT_DOUBLE_EQ(revocations[0].second, 15.0);
}

TEST(FaultInjectorTest, MissingHandlersMakeFaultsNoOps) {
  SimEngine engine;
  FaultInjector injector(&engine);
  ASSERT_TRUE(injector.ArmSpec("kill-node@1,am-crash@2,fail-container:at=3")
                  .ok());
  engine.Run();
  EXPECT_EQ(injector.counters().node_kills, 0);
  EXPECT_EQ(injector.counters().am_crashes, 0);
  EXPECT_EQ(injector.counters().container_kills, 0);
}

}  // namespace
}  // namespace hiway
