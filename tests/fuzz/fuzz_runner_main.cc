// Deterministic seeded-corpus runner for the src/fuzz targets
// (docs/fuzzing.md). Registered as `ctest -L fuzz`: replays every seed in
// tests/fuzz/corpus/<target>/, then runs mutation rounds derived from
// src/common/random.h so every execution is reproducible from (target,
// seed file, round) — no wall-clock or PID entropy.
//
// Failure handling:
//   - invariant violations (HIWAY_FUZZ_INVARIANT) are thrown, the input is
//     saved to --crash-dir, and the runner exits 1;
//   - hard crashes (SIGSEGV/SIGABRT) and hangs past --per-input-s save the
//     in-flight input from a signal/watchdog context, then exit non-zero.
// Saved inputs land as crash-<target>.bin / hang-<target>.bin so CI can
// upload them as artifacts.

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/strings.h"
#include "src/fuzz/fuzz_targets.h"

namespace hiway {
namespace fuzz {
namespace {

// ---- crash/hang input capture (async-signal-safe) -------------------------

struct InFlight {
  std::atomic<const uint8_t*> data{nullptr};
  std::atomic<size_t> size{0};
  char save_path[4096] = {0};
};
InFlight g_in_flight;

/// Writes the in-flight input with only async-signal-safe calls.
void SaveInFlightInput() {
  const uint8_t* data = g_in_flight.data.load();
  size_t size = g_in_flight.size.load();
  if (data == nullptr || g_in_flight.save_path[0] == '\0') return;
  int fd = ::open(g_in_flight.save_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::write(fd, data + off, size - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  ::close(fd);
}

void CrashHandler(int sig) {
  SaveInFlightInput();
  constexpr char kMsg[] = "fuzz_runner: crash; input saved to ";
  (void)!::write(2, kMsg, sizeof(kMsg) - 1);
  (void)!::write(2, g_in_flight.save_path,
                 ::strlen(g_in_flight.save_path));
  (void)!::write(2, "\n", 1);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

/// Watchdog: a target that does not return within the per-input budget is
/// a hang — save the input and abandon the process (the stuck thread
/// cannot be recovered).
class Watchdog {
 public:
  Watchdog(double per_input_s, std::string hang_path)
      : per_input_s_(per_input_s), hang_path_(std::move(hang_path)) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void Enter() {
    std::lock_guard<std::mutex> lock(mu_);
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(per_input_s_));
    armed_ = true;
  }
  void Leave() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      cv_.wait_for(lock, std::chrono::milliseconds(100));
      if (done_ || !armed_) continue;
      if (std::chrono::steady_clock::now() < deadline_) continue;
      // Redirect the capture path to the hang file, then save.
      std::snprintf(g_in_flight.save_path, sizeof(g_in_flight.save_path),
                    "%s", hang_path_.c_str());
      SaveInFlightInput();
      std::fprintf(stderr,
                   "fuzz_runner: target exceeded %.1fs on one input; "
                   "input saved to %s\n",
                   per_input_s_, hang_path_.c_str());
      std::_Exit(3);
    }
  }

  const double per_input_s_;
  const std::string hang_path_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::chrono::steady_clock::time_point deadline_;
  bool armed_ = false;
  bool done_ = false;
  std::thread thread_;
};

// ---- deterministic mutation -----------------------------------------------

/// Grammar-flavoured fragments shared by all targets: structural
/// punctuation plus tokens that historically trigger parser edge cases.
const char* const kDictionary[] = {
    "<",     ">",        "\"",     "{",     "}",      "[",      "]",
    ":",     ",",        "=",      "@",     "/",      "\\",     "''",
    "1e300", "1e999",    "-1",     "9223372036854775807",       "0.0",
    "null",  "true",     "false",  "NaN",   "nan",    "inf",
    "task",  "id",       "size",   "file",  "link",   "input",  "output",
    "<!--",  "-->",      "]]>",    "<![CDATA[",       "&lt;",   "&#x41;",
    "\\u0000",           "\n",     "\t",    " ",      "\r\n",
};

uint64_t HashSeed(std::string_view target, std::string_view file,
                  uint64_t round) {
  // FNV-1a over the identifying tuple; any stable mix works.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) h = (h ^ c) * 1099511628211ULL;
  };
  mix(target);
  mix("\x1f");
  mix(file);
  for (int i = 0; i < 8; ++i) h = (h ^ ((round >> (8 * i)) & 0xff)) *
                                  1099511628211ULL;
  return h;
}

std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed,
                            const std::vector<std::vector<uint8_t>>& corpus,
                            Rng* rng, size_t max_bytes) {
  std::vector<uint8_t> out = seed;
  int ops = 1 + static_cast<int>(rng->UniformInt(8));
  for (int op = 0; op < ops; ++op) {
    switch (rng->UniformInt(8)) {
      case 0:  // bit flip
        if (!out.empty()) {
          size_t pos = rng->UniformInt(out.size());
          out[pos] ^= static_cast<uint8_t>(1u << rng->UniformInt(8));
        }
        break;
      case 1:  // random byte
        if (!out.empty()) {
          out[rng->UniformInt(out.size())] =
              static_cast<uint8_t>(rng->UniformInt(256));
        }
        break;
      case 2: {  // delete span
        if (out.size() > 1) {
          size_t start = rng->UniformInt(out.size());
          size_t len = 1 + rng->UniformInt(out.size() - start);
          out.erase(out.begin() + start, out.begin() + start + len);
        }
        break;
      }
      case 3: {  // duplicate span
        if (!out.empty()) {
          size_t start = rng->UniformInt(out.size());
          size_t len = 1 + rng->UniformInt(out.size() - start);
          std::vector<uint8_t> span(out.begin() + start,
                                    out.begin() + start + len);
          out.insert(out.begin() + start, span.begin(), span.end());
        }
        break;
      }
      case 4: {  // insert random bytes
        size_t pos = out.empty() ? 0 : rng->UniformInt(out.size() + 1);
        size_t len = 1 + rng->UniformInt(8);
        std::vector<uint8_t> bytes(len);
        for (uint8_t& b : bytes) {
          b = static_cast<uint8_t>(rng->UniformInt(256));
        }
        out.insert(out.begin() + pos, bytes.begin(), bytes.end());
        break;
      }
      case 5: {  // splice with another corpus entry
        const std::vector<uint8_t>& other =
            corpus[rng->UniformInt(corpus.size())];
        if (!other.empty()) {
          size_t keep = out.empty() ? 0 : rng->UniformInt(out.size() + 1);
          size_t from = rng->UniformInt(other.size());
          out.resize(keep);
          out.insert(out.end(), other.begin() + from, other.end());
        }
        break;
      }
      case 6: {  // insert dictionary token
        const char* token =
            kDictionary[rng->UniformInt(sizeof(kDictionary) /
                                        sizeof(kDictionary[0]))];
        size_t pos = out.empty() ? 0 : rng->UniformInt(out.size() + 1);
        out.insert(out.begin() + pos,
                   reinterpret_cast<const uint8_t*>(token),
                   reinterpret_cast<const uint8_t*>(token) +
                       std::strlen(token));
        break;
      }
      case 7:  // truncate to a prefix
        if (!out.empty()) out.resize(rng->UniformInt(out.size()));
        break;
    }
  }
  if (out.size() > max_bytes) out.resize(max_bytes);
  return out;
}

// ---- driver ---------------------------------------------------------------

struct RunnerOptions {
  std::string target;
  std::string corpus_dir;
  std::string crash_dir = ".";
  int rounds = 40;
  double budget_s = 15.0;
  double per_input_s = 5.0;
  size_t max_input_bytes = 1u << 20;
  bool list = false;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --target NAME --corpus DIR [--rounds N] [--budget-s S]\n"
      "          [--per-input-s S] [--max-input-bytes N] [--crash-dir DIR]\n"
      "       %s --list\n",
      argv0, argv0);
  return 2;
}

int RunTarget(const RunnerOptions& opts) {
  const FuzzTarget* target = FindFuzzTarget(opts.target);
  if (target == nullptr) {
    std::fprintf(stderr, "fuzz_runner: unknown target '%s' (try --list)\n",
                 opts.target.c_str());
    return 2;
  }

  // Load the seed corpus in sorted order for determinism.
  std::vector<std::string> names;
  std::vector<std::vector<uint8_t>> corpus;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(opts.corpus_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    names.push_back(entry.path().string());
  }
  if (ec) {
    std::fprintf(stderr, "fuzz_runner: cannot read corpus dir %s: %s\n",
                 opts.corpus_dir.c_str(), ec.message().c_str());
    return 2;
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    std::ifstream in(name, std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    corpus.push_back(std::move(bytes));
  }
  if (corpus.empty()) {
    std::fprintf(stderr,
                 "fuzz_runner: corpus dir %s has no seed inputs; every "
                 "target must ship seeds (docs/fuzzing.md)\n",
                 opts.corpus_dir.c_str());
    return 2;
  }

  std::string crash_path =
      opts.crash_dir + "/crash-" + opts.target + ".bin";
  std::string hang_path = opts.crash_dir + "/hang-" + opts.target + ".bin";
  std::snprintf(g_in_flight.save_path, sizeof(g_in_flight.save_path), "%s",
                crash_path.c_str());
  ::signal(SIGSEGV, CrashHandler);
  ::signal(SIGABRT, CrashHandler);
  ::signal(SIGBUS, CrashHandler);
  SetInvariantThrowMode(true);

  Watchdog watchdog(opts.per_input_s, hang_path);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(opts.budget_s));

  size_t execs = 0;
  auto run_one = [&](const std::vector<uint8_t>& input,
                     const std::string& origin) -> int {
    g_in_flight.data.store(input.data());
    g_in_flight.size.store(input.size());
    watchdog.Enter();
    try {
      target->fn(input.data(), input.size());
    } catch (const InvariantViolation& violation) {
      watchdog.Leave();
      SaveInFlightInput();
      std::fprintf(stderr,
                   "fuzz_runner: %s\n  origin: %s\n  input saved to %s\n",
                   violation.what(), origin.c_str(), crash_path.c_str());
      return 1;
    }
    watchdog.Leave();
    g_in_flight.data.store(nullptr);
    ++execs;
    return 0;
  };

  // Phase 1: every seed verbatim — regressions fail even with rounds=0.
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (int rc = run_one(corpus[i], "seed " + names[i]); rc != 0) return rc;
  }

  // Phase 2: deterministic mutation rounds under the time budget.
  int completed_rounds = 0;
  for (int round = 0; round < opts.rounds; ++round) {
    if (std::chrono::steady_clock::now() >= deadline) break;
    for (size_t i = 0; i < corpus.size(); ++i) {
      Rng rng(HashSeed(opts.target, names[i],
                       static_cast<uint64_t>(round)));
      std::vector<uint8_t> mutant =
          Mutate(corpus[i], corpus, &rng, opts.max_input_bytes);
      std::string origin =
          StrFormat("mutant of %s, round %d", names[i].c_str(), round);
      if (int rc = run_one(mutant, origin); rc != 0) return rc;
    }
    ++completed_rounds;
  }

  std::printf(
      "fuzz_runner: target %-10s ok: %zu seeds, %d/%d mutation rounds, "
      "%zu execs\n",
      target->name, corpus.size(), completed_rounds, opts.rounds, execs);
  return 0;
}

int Main(int argc, char** argv) {
  RunnerOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_runner: %s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--target") {
      opts.target = value("--target");
    } else if (arg == "--corpus") {
      opts.corpus_dir = value("--corpus");
    } else if (arg == "--crash-dir") {
      opts.crash_dir = value("--crash-dir");
    } else if (arg == "--rounds") {
      opts.rounds = std::atoi(value("--rounds"));
    } else if (arg == "--budget-s") {
      opts.budget_s = std::atof(value("--budget-s"));
    } else if (arg == "--per-input-s") {
      opts.per_input_s = std::atof(value("--per-input-s"));
    } else if (arg == "--max-input-bytes") {
      opts.max_input_bytes =
          static_cast<size_t>(std::atoll(value("--max-input-bytes")));
    } else if (arg == "--list") {
      opts.list = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.list) {
    for (const FuzzTarget& t : AllFuzzTargets()) {
      std::printf("%-10s %s\n", t.name, t.description);
    }
    return 0;
  }
  if (opts.target.empty() || opts.corpus_dir.empty()) return Usage(argv[0]);
  return RunTarget(opts);
}

}  // namespace
}  // namespace fuzz
}  // namespace hiway

int main(int argc, char** argv) { return hiway::fuzz::Main(argc, argv); }
