// libFuzzer entry point for one registry target (-DHIWAY_LIBFUZZER=ON).
// Each fuzz_<name>_libfuzzer binary compiles this file with
// HIWAY_FUZZ_TARGET_NAME set, giving a coverage-guided ASan/UBSan harness
// over the exact same code the corpus runner exercises (docs/fuzzing.md).

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "src/fuzz/fuzz_targets.h"

#ifndef HIWAY_FUZZ_TARGET_NAME
#error "compile with -DHIWAY_FUZZ_TARGET_NAME=\"<target>\""
#endif

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const hiway::fuzz::FuzzTarget* target = [] {
    const hiway::fuzz::FuzzTarget* t =
        hiway::fuzz::FindFuzzTarget(HIWAY_FUZZ_TARGET_NAME);
    if (t == nullptr) {
      std::fprintf(stderr, "unknown fuzz target: %s\n",
                   HIWAY_FUZZ_TARGET_NAME);
      std::abort();
    }
    return t;
  }();
  // Abort mode (the default): invariant violations crash so libFuzzer
  // records and minimises the input.
  target->fn(data, size);
  return 0;
}
