// Tests for the intermediate-data GC stack (docs/storage-model.md): the
// DFS capacity model, reference-counted collection (src/gc/), the static
// footprint estimator, footprint-aware service admission, and the
// refcount invariants under faults (AM failover replay, preemption
// re-queue, spot-revoke drain) — a needed file is never collected.

#include "src/gc/intermediate_gc.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/gc/footprint.h"
#include "src/infra/karamel.h"
#include "src/service/workflow_service.h"
#include "src/sim/fault_injector.h"

namespace hiway {
namespace {

constexpr int64_t kMiB = 1LL << 20;

/// Snapshot of the DFS namespace: path -> size.
std::map<std::string, int64_t> DfsSnapshot(Dfs* dfs) {
  std::map<std::string, int64_t> files;
  for (const std::string& path : dfs->ListFiles()) {
    auto info = dfs->Stat(path);
    if (info.ok()) files[path] = info->size_bytes;
  }
  return files;
}

/// Minimal deployment for synthetic chain/DAG workloads. Replication 1
/// keeps raw == logical bytes, so capacity arithmetic reads off directly.
Result<std::unique_ptr<Deployment>> GcDeployment(
    const ChefAttributes& extra = {}, int workers = 6) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", workers));
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("dfs/replication", "1");
  karamel.SetAttribute("hiway/gc", "on");
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  ToolProfile chainstep;
  chainstep.name = "chainstep";
  chainstep.cpu_seconds_per_mb = 0.05;
  chainstep.fixed_cpu_seconds = 0.5;
  chainstep.runtime_noise_sigma = 0.0;
  d->tools.Register(std::move(chainstep));
  return d;
}

/// Deployment staging the snv workflow (for the fault tests, which reuse
/// the recipe workloads from service_test / elastic_test).
Result<std::unique_ptr<Deployment>> SnvGcDeployment(
    const ChefAttributes& extra = {}, bool elastic = false) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "6");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("snv/chunks", "8");
  karamel.SetAttribute("snv/chunk_mb", "32");
  karamel.SetAttribute("hiway/gc", "on");
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  if (elastic) karamel.AddRecipe(ElasticInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  return karamel.Converge();
}

/// Linear chain under `prefix`: in -> mid0 -> ... -> out, every output
/// size declared, one output per task.
std::vector<TaskSpec> ChainTasks(const std::string& prefix, int stages,
                                 int64_t stage_bytes) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < stages; ++i) {
    TaskSpec t;
    t.id = i;
    t.signature = "chainstep";
    t.command = StrFormat("chainstep --stage %d", i);
    t.input_files = {i == 0 ? prefix + "/in"
                            : StrFormat("%s/mid%d", prefix.c_str(), i - 1)};
    OutputSpec out;
    out.param = "out";
    out.path = i == stages - 1 ? prefix + "/out"
                               : StrFormat("%s/mid%d", prefix.c_str(), i);
    out.size_bytes = stage_bytes;
    t.outputs.push_back(std::move(out));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

// ---------------------------------------------------------------------
// DFS capacity model.
// ---------------------------------------------------------------------

TEST(GcTest, DfsCapacityRejectsWritesBeyondLimitAndDeleteFrees) {
  auto d = GcDeployment({{"dfs/capacity_mb", "16"}});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  Dfs* dfs = (*d)->dfs.get();
  EXPECT_EQ(dfs->options().capacity_bytes, 16 * kMiB);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dfs->IngestFile(StrFormat("/cap/f%d", i), 4 * kMiB).ok());
  }
  EXPECT_EQ(dfs->TotalStoredBytes(), 16 * kMiB);

  // One byte over capacity: refused, counted, nothing stored.
  Status over = dfs->IngestFile("/cap/over", 4 * kMiB);
  EXPECT_TRUE(over.IsResourceExhausted()) << over.ToString();
  EXPECT_EQ(dfs->counters().capacity_rejections, 1);
  EXPECT_EQ(dfs->TotalStoredBytes(), 16 * kMiB);
  EXPECT_FALSE(dfs->Stat("/cap/over").ok());

  // Delete frees capacity; the peak-footprint watermark persists.
  ASSERT_TRUE(dfs->Delete("/cap/f0").ok());
  EXPECT_EQ(dfs->counters().files_deleted, 1);
  EXPECT_EQ(dfs->counters().bytes_deleted, 4 * kMiB);
  EXPECT_EQ(dfs->TotalStoredBytes(), 12 * kMiB);
  EXPECT_EQ(dfs->counters().peak_footprint, 16 * kMiB);
  EXPECT_TRUE(dfs->IngestFile("/cap/again", 4 * kMiB).ok());
}

TEST(GcTest, DfsCapacityIsReplicaWeighted) {
  // Replication 2: a 4 MiB logical file occupies 8 MiB of raw capacity.
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("dfs/replication", "2");
  karamel.SetAttribute("dfs/capacity_mb", "16");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  Dfs* dfs = (*d)->dfs.get();

  ASSERT_TRUE(dfs->IngestFile("/r/a", 4 * kMiB).ok());
  EXPECT_EQ(dfs->TotalStoredBytes(), 8 * kMiB);
  ASSERT_TRUE(dfs->IngestFile("/r/b", 4 * kMiB).ok());
  // 16 MiB raw stored; a third logical 4 MiB (8 raw) no longer fits.
  EXPECT_TRUE(dfs->IngestFile("/r/c", 4 * kMiB).IsResourceExhausted());
  ASSERT_TRUE(dfs->Delete("/r/a").ok());
  EXPECT_EQ(dfs->counters().bytes_deleted, 8 * kMiB);  // raw, both replicas
  EXPECT_TRUE(dfs->IngestFile("/r/c", 4 * kMiB).ok());
}

// ---------------------------------------------------------------------
// Reference-counted collection.
// ---------------------------------------------------------------------

TEST(GcTest, CollectsOnlyAfterLastConsumerCompletes) {
  auto d = GcDeployment();
  ASSERT_TRUE(d.ok());
  Dfs* dfs = (*d)->dfs.get();
  IntermediateGc* gc = (*d)->gc.get();
  ASSERT_NE(gc, nullptr);

  gc->BeginScope("r1", /*is_static=*/true);
  gc->SetTargets("r1", {"/w/out"});
  ASSERT_TRUE(dfs->IngestFile("/w/mid", 4 * kMiB).ok());
  gc->RegisterConsumer("r1", /*task=*/1, {"/w/mid"});
  gc->RegisterConsumer("r1", /*task=*/2, {"/w/mid"});
  gc->RegisterProduced("r1", "/w/mid", 4 * kMiB);

  // One of two consumers done: the pin of the other keeps the file.
  gc->OnConsumerDone("r1", 1);
  EXPECT_TRUE(dfs->Stat("/w/mid").ok());
  EXPECT_EQ(gc->stats().files_collected, 0);

  // Last consumer done: dead, collected online (static scope).
  gc->OnConsumerDone("r1", 2);
  EXPECT_FALSE(dfs->Stat("/w/mid").ok());
  EXPECT_EQ(gc->stats().files_collected, 1);
  EXPECT_EQ(gc->stats().bytes_collected, 4 * kMiB);

  // Targets are never collected, not even by the final pass.
  ASSERT_TRUE(dfs->IngestFile("/w/out", kMiB).ok());
  gc->RegisterProduced("r1", "/w/out", kMiB);
  GcScopeReport report = gc->EndScope("r1");
  EXPECT_TRUE(dfs->Stat("/w/out").ok());
  EXPECT_EQ(report.files_collected, 1);
  EXPECT_EQ(report.bytes_collected, 4 * kMiB);
  EXPECT_FALSE(gc->HasScope("r1"));
}

TEST(GcTest, IterativeScopeDefersCollectionToEndScope) {
  // A non-static source can discover new consumers of any path at any
  // time, so nothing may be collected online — only the EndScope pass.
  auto d = GcDeployment();
  ASSERT_TRUE(d.ok());
  Dfs* dfs = (*d)->dfs.get();
  IntermediateGc* gc = (*d)->gc.get();

  gc->BeginScope("iter", /*is_static=*/false);
  gc->SetTargets("iter", {"/it/out"});
  ASSERT_TRUE(dfs->IngestFile("/it/mid", 2 * kMiB).ok());
  gc->RegisterConsumer("iter", 1, {"/it/mid"});
  gc->RegisterProduced("iter", "/it/mid", 2 * kMiB);
  gc->OnConsumerDone("iter", 1);
  // Dead by refcount, but the scope is iterative: still on disk.
  EXPECT_TRUE(dfs->Stat("/it/mid").ok());
  EXPECT_EQ(gc->stats().files_collected, 0);

  GcScopeReport report = gc->EndScope("iter");
  EXPECT_FALSE(dfs->Stat("/it/mid").ok());
  EXPECT_EQ(report.files_collected, 1);
}

TEST(GcTest, CrossScopeInterestBlocksCollection) {
  // Two concurrent runs reference the same path: neither may delete it
  // while the other holds an interest.
  auto d = GcDeployment();
  ASSERT_TRUE(d.ok());
  Dfs* dfs = (*d)->dfs.get();
  IntermediateGc* gc = (*d)->gc.get();

  ASSERT_TRUE(dfs->IngestFile("/sh/mid", 3 * kMiB).ok());
  gc->BeginScope("a", /*is_static=*/true);
  gc->BeginScope("b", /*is_static=*/true);
  gc->RegisterConsumer("a", 1, {"/sh/mid"});
  gc->RegisterProduced("a", "/sh/mid", 3 * kMiB);
  gc->RegisterConsumer("b", 7, {"/sh/mid"});

  // Scope a's refcount hits zero, but scope b still references the path.
  gc->OnConsumerDone("a", 1);
  EXPECT_TRUE(dfs->Stat("/sh/mid").ok());
  gc->EndScope("a");
  EXPECT_TRUE(dfs->Stat("/sh/mid").ok());  // b's interest survives a

  // b finishes its consumer; its EndScope releases the last interest
  // and the final pass collects the file a produced... except b did not
  // produce it, so the path simply outlives both scopes (a foreign file
  // is never deleted by a scope that only read it).
  gc->OnConsumerDone("b", 7);
  gc->EndScope("b");
  EXPECT_TRUE(dfs->Stat("/sh/mid").ok());

  // Reverse order: the producing scope ends last and does collect.
  ASSERT_TRUE(dfs->IngestFile("/sh2/mid", 3 * kMiB).ok());
  gc->BeginScope("c", /*is_static=*/true);
  gc->BeginScope("e", /*is_static=*/true);
  gc->RegisterConsumer("c", 1, {"/sh2/mid"});
  gc->RegisterProduced("c", "/sh2/mid", 3 * kMiB);
  gc->RegisterConsumer("e", 2, {"/sh2/mid"});
  gc->OnConsumerDone("c", 1);
  gc->OnConsumerDone("e", 2);
  gc->EndScope("e");
  EXPECT_TRUE(dfs->Stat("/sh2/mid").ok());  // c, the producer, still live
  gc->EndScope("c");
  EXPECT_FALSE(dfs->Stat("/sh2/mid").ok());
}

TEST(GcTest, DormantScopeStopsOnlineCollection) {
  // After an AM crash the scope freezes: interests kept, no collection
  // until the service dissolves it with EndScope.
  auto d = GcDeployment();
  ASSERT_TRUE(d.ok());
  Dfs* dfs = (*d)->dfs.get();
  IntermediateGc* gc = (*d)->gc.get();

  gc->BeginScope("dead", /*is_static=*/true);
  ASSERT_TRUE(dfs->IngestFile("/dm/mid", kMiB).ok());
  gc->RegisterConsumer("dead", 1, {"/dm/mid"});
  gc->RegisterProduced("dead", "/dm/mid", kMiB);
  gc->MarkDormant("dead");
  gc->OnConsumerDone("dead", 1);
  EXPECT_TRUE(dfs->Stat("/dm/mid").ok());  // frozen, not collected

  // Replacement attempt re-registers its interest before the dormant
  // scope dissolves; the file survives the dissolution.
  gc->BeginScope("next", /*is_static=*/true);
  gc->RegisterConsumer("next", 1, {"/dm/mid"});
  gc->EndScope("dead");
  EXPECT_TRUE(dfs->Stat("/dm/mid").ok());
  gc->OnConsumerDone("next", 1);
  gc->EndScope("next");
}

// ---------------------------------------------------------------------
// GC x result cache: sealed entries pin their outputs.
// ---------------------------------------------------------------------

TEST(GcTest, ResultCachePinsDeferCollectionAndHitsSurvive) {
  auto d = GcDeployment({{"hiway/cache_results", "on"}});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_NE((*d)->result_cache, nullptr);
  ASSERT_NE((*d)->gc, nullptr);
  ASSERT_TRUE((*d)->dfs->IngestFile("/c/in", 4 * kMiB).ok());
  std::vector<TaskSpec> tasks = ChainTasks("/c", 4, 4 * kMiB);
  std::vector<std::string> targets = {"/c/out"};

  HiWayClient client(d->get());
  StaticWorkflowSource first("chain", tasks, targets);
  auto r1 = client.RunSource(&first, "data-aware", {});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r1->status.ok());

  // Every intermediate is dead (last consumer completed) but sealed in
  // the result cache: collection deferred, nothing deleted.
  EXPECT_EQ(r1->gc_files_collected, 0);
  EXPECT_GT((*d)->gc->stats().cache_deferrals, 0);
  EXPECT_TRUE((*d)->dfs->Stat("/c/mid0").ok());

  // Re-running the same workflow hits the cache — proof the collector
  // never invalidated a sealed entry's outputs.
  StaticWorkflowSource second("chain", tasks, targets);
  auto r2 = client.RunSource(&second, "data-aware", {});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_TRUE(r2->status.ok());
  EXPECT_GT(r2->tasks_cached, 0);
}

// ---------------------------------------------------------------------
// Footprint estimator.
// ---------------------------------------------------------------------

TEST(GcTest, EstimatorHandComputedChainAndDiamond) {
  auto d = GcDeployment();
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->dfs->IngestFile("/e/in", 4 * kMiB).ok());

  // Chain: at any step the staged input, the stage's own output, and its
  // not-yet-retired predecessor are live -> 3 x 4 MiB.
  std::vector<TaskSpec> chain = ChainTasks("/e", 8, 4 * kMiB);
  FootprintEstimate est = EstimateFootprint(chain, {"/e/out"},
                                            (*d)->dfs.get());
  EXPECT_EQ(est.peak_bytes, 3 * 4 * kMiB);
  EXPECT_EQ(est.input_bytes, 4 * kMiB);
  EXPECT_EQ(est.total_produced_bytes, 8 * 4 * kMiB);
  EXPECT_TRUE(est.exact_sizes);

  // Diamond in -> split -> {a, b} -> out: the join step holds in, a, b,
  // and out simultaneously (split retired when b completed) -> 4 x 4 MiB.
  auto task = [](TaskId id, std::vector<std::string> inputs,
                 const std::string& out_path) {
    TaskSpec t;
    t.id = id;
    t.signature = "chainstep";
    t.command = "chainstep";
    t.input_files = std::move(inputs);
    OutputSpec out;
    out.param = "out";
    out.path = out_path;
    out.size_bytes = 4 * kMiB;
    t.outputs.push_back(std::move(out));
    return t;
  };
  std::vector<TaskSpec> diamond = {
      task(0, {"/e/in"}, "/e/split"), task(1, {"/e/split"}, "/e/a"),
      task(2, {"/e/split"}, "/e/b"), task(3, {"/e/a", "/e/b"}, "/e/out")};
  est = EstimateFootprint(diamond, {"/e/out"}, (*d)->dfs.get());
  EXPECT_EQ(est.peak_bytes, 4 * 4 * kMiB);

  // An undeclared output size falls back to sum-of-inputs and degrades
  // the estimate to a heuristic.
  diamond[3].outputs[0].size_bytes.reset();
  est = EstimateFootprint(diamond, {"/e/out"}, (*d)->dfs.get());
  EXPECT_FALSE(est.exact_sizes);
}

/// Deterministic LCG so the property test replays identically.
struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  int Uniform(int bound) { return static_cast<int>(Next() % bound); }
};

/// Random DAG with one declared-size output per task; early tasks read a
/// shared external input, later tasks read a random subset of earlier
/// outputs. Returns targets = the last task's output (other sinks are
/// dead-on-arrival, covering the estimator's DOA branch).
std::vector<TaskSpec> RandomDag(Lcg& rng, const std::string& prefix,
                                int n_tasks) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < n_tasks; ++i) {
    TaskSpec t;
    t.id = i;
    t.signature = "chainstep";
    t.command = StrFormat("chainstep --n %d", i);
    for (int j = 0; j < i; ++j) {
      if (rng.Uniform(100) < 35) {
        t.input_files.push_back(StrFormat("%s/f%d", prefix.c_str(), j));
      }
    }
    if (t.input_files.empty()) {
      t.input_files.push_back(prefix + "/ext");
    }
    OutputSpec out;
    out.param = "out";
    out.path = StrFormat("%s/f%d", prefix.c_str(), i);
    out.size_bytes = static_cast<int64_t>(1 + rng.Uniform(8)) * kMiB;
    t.outputs.push_back(std::move(out));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

/// Independent brute-force liveness: walk the same Kahn order, but
/// recompute the live set FROM SCRATCH at every step — a file is live
/// iff it is the external input, a target, a produced file with a
/// consumer that has not yet run, or the output just produced. Valid for
/// one-output-per-task graphs (the estimator's transient peak counts one
/// dead-on-arrival output at a time).
int64_t BruteForcePeak(const std::vector<TaskSpec>& tasks,
                       const std::set<std::string>& targets,
                       const std::map<std::string, int64_t>& externals) {
  std::map<std::string, size_t> producer_of;
  std::map<std::string, int64_t> size_of;
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (const OutputSpec& out : tasks[i].outputs) {
      producer_of[out.path] = i;
      size_of[out.path] = out.size_bytes.value_or(0);
    }
  }
  // Kahn order, ready queue in index order (matches the estimator).
  std::vector<int> missing(tasks.size(), 0);
  std::vector<std::vector<size_t>> dependents(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::set<std::string> inputs(tasks[i].input_files.begin(),
                                 tasks[i].input_files.end());
    for (const std::string& path : inputs) {
      auto p = producer_of.find(path);
      if (p != producer_of.end() && p->second != i) {
        ++missing[i];
        dependents[p->second].push_back(i);
      }
    }
  }
  std::vector<size_t> order;
  std::vector<size_t> ready;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (missing[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    size_t i = ready.front();
    ready.erase(ready.begin());
    order.push_back(i);
    for (size_t dep : dependents[i]) {
      if (--missing[dep] == 0) ready.push_back(dep);
    }
  }

  int64_t ext_bytes = 0;
  for (const auto& [path, size] : externals) ext_bytes += size;
  int64_t peak = ext_bytes;
  std::set<size_t> done;
  for (size_t step = 0; step < order.size(); ++step) {
    size_t t = order[step];
    // Live at the instant t's output lands, before t's inputs retire:
    // every file produced by a completed task that is a target or still
    // awaits a consumer outside done, plus t's own fresh output.
    int64_t live = ext_bytes;
    for (size_t j : done) {
      for (const OutputSpec& out : tasks[j].outputs) {
        bool needed = targets.count(out.path) > 0;
        for (size_t k = 0; !needed && k < tasks.size(); ++k) {
          if (done.count(k) > 0) continue;
          for (const std::string& in : tasks[k].input_files) {
            if (in == out.path) {
              needed = true;
              break;
            }
          }
        }
        if (needed) live += size_of[out.path];
      }
    }
    for (const OutputSpec& out : tasks[t].outputs) {
      live += size_of[out.path];
    }
    peak = std::max(peak, live);
    done.insert(t);
  }
  return peak;
}

TEST(GcTest, EstimatorMatchesBruteForceOnRandomDags) {
  Lcg rng{0x9e3779b97f4a7c15ULL};
  for (int g = 0; g < 20; ++g) {
    int n = 3 + rng.Uniform(8);
    std::string prefix = StrFormat("/p%02d", g);
    std::vector<TaskSpec> tasks = RandomDag(rng, prefix, n);
    std::string target = StrFormat("%s/f%d", prefix.c_str(), n - 1);
    int64_t ext_size = static_cast<int64_t>(1 + rng.Uniform(4)) * kMiB;

    // dfs = nullptr exercises the unknown-external path (size 0); the
    // brute force then sees an empty externals map.
    FootprintEstimate no_dfs = EstimateFootprint(tasks, {target}, nullptr);
    EXPECT_EQ(no_dfs.peak_bytes, BruteForcePeak(tasks, {target}, {}))
        << "graph " << g << " (no dfs)";
    EXPECT_EQ(no_dfs.input_bytes, 0);

    auto d = GcDeployment({}, /*workers=*/2);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE((*d)->dfs->IngestFile(prefix + "/ext", ext_size).ok());
    FootprintEstimate est = EstimateFootprint(tasks, {target},
                                              (*d)->dfs.get());
    int64_t brute = BruteForcePeak(tasks, {target},
                                   {{prefix + "/ext", ext_size}});
    EXPECT_EQ(est.peak_bytes, brute) << "graph " << g;
    EXPECT_EQ(est.input_bytes, ext_size) << "graph " << g;
    EXPECT_TRUE(est.exact_sizes);
  }
}

TEST(GcTest, RandomDagsRunByteIdenticalWithGcOnAndOff) {
  // End-to-end: the collector must never change workflow results. Same
  // random DAG executed with GC on and off — identical target bytes, and
  // with GC on the non-target intermediates are gone afterwards.
  Lcg rng{0xc0ffee123ULL};
  for (int g = 0; g < 4; ++g) {
    int n = 4 + rng.Uniform(5);
    std::string prefix = StrFormat("/rt%d", g);
    std::vector<TaskSpec> tasks = RandomDag(rng, prefix, n);
    std::string target = StrFormat("%s/f%d", prefix.c_str(), n - 1);

    auto run = [&](bool gc) {
      ChefAttributes attrs;
      if (!gc) attrs["hiway/gc"] = "off";
      auto d = GcDeployment(attrs);
      EXPECT_TRUE(d.ok());
      EXPECT_TRUE((*d)->dfs->IngestFile(prefix + "/ext", 2 * kMiB).ok());
      StaticWorkflowSource source("dag", tasks, {target});
      HiWayClient client(d->get());
      auto report = client.RunSource(&source, "data-aware", {});
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->status.ok()) << report->status.ToString();
      if (gc) {
        // Final pass ran: every non-target produced file was collected.
        for (int i = 0; i < n - 1; ++i) {
          EXPECT_FALSE(
              (*d)->dfs->Stat(StrFormat("%s/f%d", prefix.c_str(), i)).ok())
              << "graph " << g << " file f" << i << " survived GC";
        }
        EXPECT_GT(report->gc_files_collected, 0);
        EXPECT_GT(report->peak_footprint_bytes, 0);
      }
      auto info = (*d)->dfs->Stat(target);
      EXPECT_TRUE(info.ok());
      return info.ok() ? std::make_pair(info->size_bytes, info->content_id)
                       : std::make_pair(int64_t{-1}, uint64_t{0});
    };
    auto with_gc = run(true);
    auto without_gc = run(false);
    EXPECT_EQ(with_gc, without_gc) << "graph " << g;
  }
}

// ---------------------------------------------------------------------
// Refcount invariants under faults: a needed file is never collected.
// ---------------------------------------------------------------------

TEST(GcTest, FailoverReplayNeverCollectsNeededFiles) {
  // Clean GC-on run for the makespan and the reference outputs.
  const int kStages = 6;
  auto mk_source = [&]() {
    return std::unique_ptr<WorkflowSource>(new StaticWorkflowSource(
        "chain", ChainTasks("/fo", kStages, 4 * kMiB), {"/fo/out"}));
  };
  auto run = [&](double strike) {
    auto d = GcDeployment();
    EXPECT_TRUE(d.ok());
    EXPECT_TRUE((*d)->dfs->IngestFile("/fo/in", 4 * kMiB).ok());
    auto service =
        WorkflowService::Create(d->get(), WorkflowServiceOptions{});
    EXPECT_TRUE(service.ok());
    SubmissionOptions opts;
    opts.source_factory = [&] {
      return Result<std::unique_ptr<WorkflowSource>>(mk_source());
    };
    auto id = (*service)->Submit("chain", mk_source(), opts);
    EXPECT_TRUE(id.ok());
    FaultInjector injector(&(*d)->engine);
    if (strike > 0) {
      (*service)->InstallFaultHandlers(&injector);
      EXPECT_TRUE(injector
                      .ArmSpec(StrFormat("kill-am-node:at=%.3f:sub=%lld",
                                         strike,
                                         static_cast<long long>(*id)))
                      .ok());
    }
    EXPECT_TRUE((*service)->RunToCompletion().ok());
    const SubmissionRecord* rec = (*service)->record(*id);
    EXPECT_EQ(rec->state, SubmissionState::kSucceeded)
        << rec->report.status.ToString();
    if (strike > 0) {
      EXPECT_EQ(rec->am_attempts, 2);
      // The replacement memoised the dead attempt's completed prefix;
      // replay re-registered every interest, so no input of a re-run
      // task had been collected (a collected input would have failed
      // the run outright).
      EXPECT_GT(rec->report.tasks_memoised, 0);
    }
    // All scopes dissolved: the dormant dead-attempt scope included.
    EXPECT_EQ((*d)->gc->stats().scopes_opened,
              (*d)->gc->stats().scopes_ended);
    struct Out {
      double makespan;
      std::map<std::string, int64_t> files;
    };
    return Out{rec->finished_at, DfsSnapshot((*d)->dfs.get())};
  };

  auto clean = run(0.0);
  auto faulted = run(0.6 * clean.makespan);
  // Byte-identical surviving namespace: the chain's target and input,
  // with every intermediate collected in both runs.
  for (const auto& [path, size] : clean.files) {
    auto it = faulted.files.find(path);
    ASSERT_NE(it, faulted.files.end()) << path;
    EXPECT_EQ(it->second, size) << path;
  }
  EXPECT_EQ(clean.files.count("/fo/out"), 1u);
  EXPECT_EQ(clean.files.count("/fo/mid0"), 0u);
}

TEST(GcTest, PreemptedTasksKeepTheirInputPins) {
  // The service_test preemption scenario with the collector enabled: a
  // preempted task is re-queued without OnConsumerDone, so its inputs
  // stay pinned and the retry finds them intact. Success with
  // max_attempts = 1 on the batch queue proves both the attempt
  // exemption and the pin retention.
  auto d = SnvGcDeployment({{"yarn/preemption", "true"},
                            {"yarn/preemption_grace_s", "2"},
                            {"yarn/max_preempt_per_round", "8"},
                            {"cluster/workers", "4"}});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_NE((*d)->gc, nullptr);
  WorkflowServiceOptions options;
  options.rm_scheduler = "capacity";
  ServiceQueueOptions batch;
  batch.rm = RmQueueConfig{"batch", 0.2, 0.85, 1.0};
  ServiceQueueOptions prod;
  prod.rm = RmQueueConfig{"prod", 0.7, 1.0, 1.0};
  options.queues = {batch, prod};
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  SubmissionOptions batch_opts;
  batch_opts.queue = "batch";
  batch_opts.hiway.container_priority = 0;
  batch_opts.hiway.task_retry.max_attempts = 1;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE((*service)->SubmitStaged("snv-calling", batch_opts).ok());
  }
  (*d)->engine.ScheduleAt(25.0, [&] {
    SubmissionOptions prod_opts;
    prod_opts.queue = "prod";
    prod_opts.hiway.container_priority = 10;
    ASSERT_TRUE((*service)->SubmitStaged("snv-calling", prod_opts).ok());
  });
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  int preempted = 0;
  for (const SubmissionRecord& rec : (*service)->Records()) {
    EXPECT_EQ(rec.state, SubmissionState::kSucceeded)
        << rec.name << ": " << rec.report.status.ToString();
    EXPECT_EQ(rec.report.failed_attempts, 0) << rec.name;
    preempted += rec.report.tasks_preempted;
  }
  EXPECT_GT(preempted, 0);  // preemption really happened
  EXPECT_EQ((*d)->gc->stats().scopes_opened, (*d)->gc->stats().scopes_ended);
}

TEST(GcTest, SpotRevokeDrainKeepsInputPinsThroughRequeue) {
  auto d = SnvGcDeployment({{"hiway/cache_staging_mb", "0"}},
                           /*elastic=*/true);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());

  FaultInjector injector(&(*d)->engine, /*seed=*/13);
  (*service)->InstallFaultHandlers(&injector);
  ASSERT_TRUE(injector.ArmSpec("spot-revoke@40:warn=120").ok());

  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->state, SubmissionState::kSucceeded)
      << rec->report.status.ToString();
  EXPECT_EQ(injector.counters().spot_revocations, 1);
  // Drained requeues keep their pins: no failed attempts, no data loss.
  EXPECT_EQ(rec->report.failed_attempts, 0);
  EXPECT_TRUE((*d)->dfs->AllFilesReadable());
}

// ---------------------------------------------------------------------
// Footprint-aware admission.
// ---------------------------------------------------------------------

TEST(GcTest, AdmissionSerialisesOversubscribedBurst) {
  // 64 MiB capacity, three workflows each declaring 30 MiB of additional
  // footprint: only one fits the budget at a time, so the service must
  // serialise them — and all three finish.
  auto d = GcDeployment({{"dfs/capacity_mb", "64"}});
  ASSERT_TRUE(d.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        (*d)->dfs->IngestFile(StrFormat("/a%d/in", i), 4 * kMiB).ok());
  }
  WorkflowServiceOptions options;
  options.footprint_admission = true;
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  // Budget = capacity - staged baseline = 64 - 12 = 52 MiB.
  EXPECT_EQ((*service)->footprint_budget_bytes(), 52 * kMiB);

  for (int i = 0; i < 3; ++i) {
    std::string prefix = StrFormat("/a%d", i);
    SubmissionOptions opts;
    opts.footprint_bytes = 30 * kMiB;
    auto source = std::make_unique<StaticWorkflowSource>(
        "chain", ChainTasks(prefix, 4, 4 * kMiB),
        std::vector<std::string>{prefix + "/out"});
    ASSERT_TRUE(
        (*service)->Submit(prefix, std::move(source), opts).ok());
  }
  // 30 + 30 > 52: only the first submission starts immediately.
  EXPECT_EQ((*service)->running_ams(), 1);
  EXPECT_EQ((*service)->committed_footprint_bytes(), 30 * kMiB);

  ASSERT_TRUE((*service)->RunToCompletion().ok());
  std::vector<const SubmissionRecord*> recs;
  for (const SubmissionRecord& rec : (*service)->Records()) {
    EXPECT_EQ(rec.state, SubmissionState::kSucceeded)
        << rec.name << ": " << rec.report.status.ToString();
    recs.push_back(&rec);
  }
  ASSERT_EQ(recs.size(), 3u);
  // Strict serialisation: each start waited for the previous finish.
  EXPECT_GE(recs[1]->started_at, recs[0]->finished_at);
  EXPECT_GE(recs[2]->started_at, recs[1]->finished_at);
  // Every charge was released on completion.
  EXPECT_EQ((*service)->committed_footprint_bytes(), 0);
}

TEST(GcTest, AdmissionFailsWorkflowThatCanNeverFit) {
  auto d = GcDeployment({{"dfs/capacity_mb", "32"}});
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->dfs->IngestFile("/nf/in", 4 * kMiB).ok());
  WorkflowServiceOptions options;
  options.footprint_admission = true;
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());

  SubmissionOptions opts;
  opts.footprint_bytes = 100 * kMiB;  // larger than the whole budget
  auto source = std::make_unique<StaticWorkflowSource>(
      "chain", ChainTasks("/nf", 4, 4 * kMiB),
      std::vector<std::string>{"/nf/out"});
  auto id = (*service)->Submit("/nf", std::move(source), opts);
  ASSERT_TRUE(id.ok());  // accepted into the queue...
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  // ...but terminally rejected at start: it can never fit the budget.
  EXPECT_EQ(rec->state, SubmissionState::kFailed);
  EXPECT_TRUE(rec->report.status.IsResourceExhausted())
      << rec->report.status.ToString();
  EXPECT_EQ((*service)->committed_footprint_bytes(), 0);
}

TEST(GcTest, AdmissionAutoEstimatesStaticSources) {
  // Default footprint_bytes = -1: the service estimates the chain's peak
  // itself (12 MiB) and charges peak - staged inputs = 8 MiB.
  auto d = GcDeployment({{"dfs/capacity_mb", "64"}});
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->dfs->IngestFile("/ae/in", 4 * kMiB).ok());
  WorkflowServiceOptions options;
  options.footprint_admission = true;
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());

  auto mk = [] {
    return Result<std::unique_ptr<WorkflowSource>>(
        std::unique_ptr<WorkflowSource>(new StaticWorkflowSource(
            "chain", ChainTasks("/ae", 6, 4 * kMiB), {"/ae/out"})));
  };
  SubmissionOptions opts;
  opts.source_factory = mk;
  auto source = mk();
  ASSERT_TRUE(source.ok());
  auto id = (*service)->Submit("/ae", std::move(*source), opts);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*service)->committed_footprint_bytes(), 8 * kMiB);
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->footprint_estimate_bytes, 12 * kMiB);

  ASSERT_TRUE((*service)->RunToCompletion().ok());
  rec = (*service)->record(*id);
  EXPECT_EQ(rec->state, SubmissionState::kSucceeded)
      << rec->report.status.ToString();
  // The traced actual peak matches the admission estimate (declared
  // sizes, serial chain: the estimator is exact here).
  EXPECT_EQ(rec->report.peak_footprint_bytes, 12 * kMiB);
  EXPECT_EQ((*service)->committed_footprint_bytes(), 0);
}

TEST(GcTest, AdmissionBypassAndCapExemptionWhenUncapped) {
  // footprint_bytes = 0 bypasses the gate even when admission is on; an
  // uncapped DFS disables the gate entirely (budget 0).
  auto d = GcDeployment();  // no capacity attr -> unlimited
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->dfs->IngestFile("/by/in", 4 * kMiB).ok());
  WorkflowServiceOptions options;
  options.footprint_admission = true;
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->footprint_budget_bytes(), 0);

  SubmissionOptions opts;
  opts.footprint_bytes = 0;
  auto source = std::make_unique<StaticWorkflowSource>(
      "chain", ChainTasks("/by", 4, 4 * kMiB),
      std::vector<std::string>{"/by/out"});
  auto id = (*service)->Submit("/by", std::move(source), opts);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*service)->committed_footprint_bytes(), 0);
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  EXPECT_EQ((*service)->record(*id)->state, SubmissionState::kSucceeded);
}

}  // namespace
}  // namespace hiway
