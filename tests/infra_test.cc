// Tests for the Karamel/Chef-style reproducible-installation module.

#include "src/infra/karamel.h"

#include <gtest/gtest.h>

#include "src/core/client.h"

namespace hiway {
namespace {

TEST(KaramelTest, ConvergesRecipesInDependencyOrder) {
  Karamel karamel;
  std::vector<std::string> order;
  Recipe a;
  a.name = "a";
  a.dependencies = {"b"};
  a.converge = [&order](const ChefAttributes&, Deployment*) {
    order.push_back("a");
    return Status::OK();
  };
  Recipe b;
  b.name = "b";
  b.converge = [&order](const ChefAttributes&, Deployment*) {
    order.push_back("b");
    return Status::OK();
  };
  // Register in the "wrong" order on purpose.
  karamel.AddRecipe(a);
  karamel.AddRecipe(b);
  ASSERT_TRUE(karamel.Converge().ok());
  EXPECT_EQ(order, (std::vector<std::string>{"b", "a"}));
}

TEST(KaramelTest, DetectsCyclesAndUnknownDependencies) {
  {
    Karamel karamel;
    Recipe a;
    a.name = "a";
    a.dependencies = {"b"};
    a.converge = [](const ChefAttributes&, Deployment*) {
      return Status::OK();
    };
    Recipe b;
    b.name = "b";
    b.dependencies = {"a"};
    b.converge = a.converge;
    karamel.AddRecipe(a);
    karamel.AddRecipe(b);
    EXPECT_TRUE(karamel.Converge().status().IsInvalidArgument());
  }
  {
    Karamel karamel;
    Recipe a;
    a.name = "a";
    a.dependencies = {"ghost"};
    a.converge = [](const ChefAttributes&, Deployment*) {
      return Status::OK();
    };
    karamel.AddRecipe(a);
    EXPECT_TRUE(karamel.Converge().status().IsInvalidArgument());
  }
  {
    Karamel karamel;
    Recipe a;
    a.name = "dup";
    a.converge = [](const ChefAttributes&, Deployment*) {
      return Status::OK();
    };
    karamel.AddRecipe(a);
    karamel.AddRecipe(a);
    EXPECT_TRUE(karamel.Converge().status().IsInvalidArgument());
  }
}

TEST(KaramelTest, RecipeFailureNamesTheRecipe) {
  Karamel karamel;
  Recipe bad;
  bad.name = "workflow::broken";
  bad.converge = [](const ChefAttributes&, Deployment*) {
    return Status::IoError("no data");
  };
  karamel.AddRecipe(bad);
  auto result = karamel.Converge();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("workflow::broken"),
            std::string::npos);
}

TEST(HadoopRecipeTest, BuildsClusterFromAttributes) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "6");
  karamel.SetAttribute("cluster/cores", "16");
  karamel.SetAttribute("cluster/switch_mbps", "500");
  karamel.SetAttribute("cluster/ebs_mbps", "120");
  karamel.SetAttribute("dfs/replication", "2");
  karamel.AddRecipe(HadoopInstallRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ((*d)->cluster->num_nodes(), 6);
  EXPECT_EQ((*d)->cluster->node(0).cores, 16);
  EXPECT_DOUBLE_EQ(
      (*d)->net.Capacity((*d)->cluster->switch_resource()), 500.0);
  EXPECT_TRUE((*d)->cluster->has_ebs());
  EXPECT_EQ((*d)->dfs->options().replication, 2);
  EXPECT_NE((*d)->rm, nullptr);
  EXPECT_NE((*d)->load, nullptr);
}

TEST(HadoopRecipeTest, RejectsNonsenseAttributes) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "0");
  karamel.AddRecipe(HadoopInstallRecipe());
  EXPECT_FALSE(karamel.Converge().ok());
}

TEST(HiWayRecipeTest, InstallsToolsAndProvenance) {
  Karamel karamel;
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE((*d)->tools.Contains("bowtie2"));
  EXPECT_TRUE((*d)->tools.Contains("mAdd"));
  EXPECT_NE((*d)->provenance, nullptr);
  EXPECT_EQ((*d)->provenance->size(), 0u);
}

TEST(WorkflowRecipesTest, StageDocumentsAndIngestInputs) {
  Karamel karamel;
  karamel.SetAttribute("snv/chunks", "4");
  karamel.SetAttribute("snv/chunk_mb", "64");
  karamel.SetAttribute("kmeans/points_mb", "16");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  karamel.AddRecipe(TraplineWorkflowRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_EQ((*d)->workflows.size(), 4u);
  // Inputs of every staged workflow exist in the DFS.
  for (const auto& [name, staged] : (*d)->workflows) {
    for (const auto& [path, size] : staged.inputs) {
      EXPECT_TRUE((*d)->dfs->Exists(path)) << name << " " << path;
    }
  }
  EXPECT_EQ((*d)->workflows.at("snv-calling").language, "cuneiform");
  EXPECT_EQ((*d)->workflows.at("montage").language, "dax");
  EXPECT_EQ((*d)->workflows.at("trapline").language, "galaxy");
  EXPECT_EQ((*d)->workflows.at("trapline").galaxy_inputs.size(), 6u);
}

TEST(WorkflowRecipesTest, S3IngestRegistersExternalFiles) {
  Karamel karamel;
  karamel.SetAttribute("cluster/s3_mbps", "1000");
  karamel.SetAttribute("snv/chunks", "2");
  karamel.SetAttribute("snv/ingest", "s3");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const StagedWorkflow& staged = (*d)->workflows.at("snv-calling");
  for (const auto& [path, size] : staged.inputs) {
    EXPECT_TRUE((*d)->dfs->Exists(path));
    EXPECT_EQ((*d)->dfs->LocalBytes(path, 0), 0);  // external, no replicas
  }
}

TEST(WorkflowRecipesTest, UnknownIngestModeFails) {
  Karamel karamel;
  karamel.SetAttribute("snv/ingest", "carrier-pigeon");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  EXPECT_FALSE(karamel.Converge().ok());
}

TEST(ClientTest, RunsStagedWorkflowEndToEnd) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("kmeans/points_mb", "16");
  karamel.SetAttribute("kmeans/converge_after", "2");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok());
  HiWayClient client(d->get());
  auto report = client.Run("kmeans", "fcfs");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  // init + 2 x (step + check) = 5.
  EXPECT_EQ(report->tasks_completed, 5);
}

TEST(ClientTest, UnknownWorkflowOrPolicyFails) {
  Karamel karamel;
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok());
  HiWayClient client(d->get());
  EXPECT_TRUE(client.Run("nope", "fcfs").status().IsNotFound());
  EXPECT_TRUE(
      client.Run("kmeans", "quantum").status().IsInvalidArgument());
}

// --- fuzz regressions (tests/fuzz/corpus/karamel/, docs/fuzzing.md) ------

Result<std::unique_ptr<Deployment>> ConvergeHadoopWith(
    const std::string& key, const std::string& value) {
  Karamel karamel;
  karamel.SetAttribute(key, value);
  karamel.AddRecipe(HadoopInstallRecipe());
  return karamel.Converge();
}

TEST(KaramelAttrTest, BlockSizeShiftOverflowRejected) {
  // crash_block_shift.txt: dfs/block_mb=8796093022208 made `block_mb << 20`
  // overflow int64, leaving a non-positive DFS block size that tripped a
  // HIWAY_CHECK abort inside Dfs. Attribute validation now bounds it.
  auto d = ConvergeHadoopWith("dfs/block_mb", "8796093022208");
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().ToString().find("dfs/block_mb"), std::string::npos)
      << d.status().ToString();
  EXPECT_NE(d.status().ToString().find("allowed range"), std::string::npos);
}

TEST(KaramelAttrTest, MalformedAttributesNameKeyAndToken) {
  auto workers = ConvergeHadoopWith("cluster/workers", "many");
  ASSERT_FALSE(workers.ok());
  EXPECT_NE(workers.status().ToString().find("cluster/workers"),
            std::string::npos)
      << workers.status().ToString();
  EXPECT_NE(workers.status().ToString().find("many"), std::string::npos);

  auto negative = ConvergeHadoopWith("cluster/workers", "-2");
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().ToString().find("allowed range"),
            std::string::npos)
      << negative.status().ToString();

  auto inf_bw = ConvergeHadoopWith("cluster/disk_mbps", "inf");
  ASSERT_FALSE(inf_bw.ok());
  EXPECT_NE(inf_bw.status().ToString().find("cluster/disk_mbps"),
            std::string::npos)
      << inf_bw.status().ToString();
}

}  // namespace
}  // namespace hiway
