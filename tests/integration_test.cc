// Cross-module integration and property tests: full workflows in every
// language on simulated clusters, scheduler equivalence of results,
// fault-tolerance paths, and trace re-execution.

#include <gtest/gtest.h>

#include <set>

#include "src/baseline/tez_am.h"
#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/lang/cuneiform.h"
#include "src/lang/dax_source.h"
#include "src/lang/trace_source.h"

namespace hiway {
namespace {

Result<std::unique_ptr<Deployment>> SmallDeployment(
    int workers = 4, const ChefAttributes& extra = {}) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", workers));
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("snv/chunks", "6");
  karamel.SetAttribute("snv/chunk_mb", "64");
  karamel.SetAttribute("rnaseq/sample_mb", "64");
  karamel.SetAttribute("montage/images", "6");
  karamel.SetAttribute("kmeans/points_mb", "16");
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  karamel.AddRecipe(TraplineWorkflowRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  return karamel.Converge();
}

// Every language front-end runs end-to-end on the same deployment.
TEST(IntegrationTest, AllFourLanguagesExecute) {
  struct Case {
    const char* workflow;
    const char* policy;
    int expected_tasks;
  };
  const Case cases[] = {
      {"snv-calling", "data-aware", 24},  // 6 chunks x 4 stages
      {"trapline", "fcfs", 26},
      {"montage", "heft", 27},  // 6 proj + 9 diff + 6 bg + 6 tail
      {"kmeans", "fcfs", 11},   // init + 5 x (step + check)
  };
  for (const Case& c : cases) {
    auto d = SmallDeployment();
    ASSERT_TRUE(d.ok());
    HiWayClient client(d->get());
    auto report = client.Run(c.workflow, c.policy);
    ASSERT_TRUE(report.ok()) << c.workflow << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->status.ok())
        << c.workflow << ": " << report->status.ToString();
    EXPECT_EQ(report->tasks_completed, c.expected_tasks) << c.workflow;
    EXPECT_GT(report->Makespan(), 0.0);
  }
}

// Property: every scheduler executes each task exactly once, respects
// data dependencies, and produces the same set of output files.
class SchedulerEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerEquivalenceTest, SameOutputsEveryTaskOnce) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  HiWayClient client(d->get());
  auto report = client.Run("montage", GetParam());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 27);
  EXPECT_EQ(report->task_attempts, 27);  // no retries without failures

  // Each task has exactly one start and one end; end after start; inputs
  // staged before the task that produced them completed... verify
  // dependency order via file events: a stage-in of a produced file only
  // happens after that file's stage-out.
  std::map<std::string, double> produced_at;
  std::map<TaskId, int> starts, ends;
  for (const ProvenanceEvent& ev : (*d)->provenance->Events()) {
    switch (ev.type) {
      case ProvenanceEventType::kTaskStart:
        ++starts[ev.task_id];
        break;
      case ProvenanceEventType::kTaskEnd:
        ++ends[ev.task_id];
        break;
      case ProvenanceEventType::kFileStageOut:
        produced_at[ev.file_path] = ev.timestamp;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(starts.size(), 27u);
  for (const auto& [id, n] : starts) EXPECT_EQ(n, 1);
  for (const auto& [id, n] : ends) EXPECT_EQ(n, 1);
  for (const ProvenanceEvent& ev : (*d)->provenance->Events()) {
    if (ev.type == ProvenanceEventType::kFileStageIn) {
      auto it = produced_at.find(ev.file_path);
      if (it != produced_at.end()) {
        EXPECT_LE(it->second, ev.timestamp + 1e-9) << ev.file_path;
      }
    }
  }
  // The final mosaic exists.
  EXPECT_TRUE((*d)->dfs->Exists("/dax/mosaic.jpg"));
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerEquivalenceTest,
                         ::testing::Values("fcfs", "data-aware",
                                           "round-robin", "heft"));

// Property: weak scaling stays within a narrow band (the Fig. 5 claim at
// test scale).
TEST(IntegrationTest, WeakScalingStaysFlat) {
  auto run_scale = [](int workers) -> double {
    Karamel karamel;
    karamel.SetAttribute("cluster/workers", StrFormat("%d", workers));
    karamel.SetAttribute("cluster/cores", "2");
    karamel.SetAttribute("cluster/switch_mbps", "20000");
    karamel.SetAttribute("snv/chunks", StrFormat("%d", workers * 2));
    karamel.SetAttribute("snv/chunk_mb", "64");
    karamel.AddRecipe(HadoopInstallRecipe());
    karamel.AddRecipe(HiWayInstallRecipe());
    karamel.AddRecipe(SnvWorkflowRecipe());
    auto d = karamel.Converge();
    EXPECT_TRUE(d.ok());
    HiWayClient client(d->get());
    HiWayOptions options;
    options.container_vcores = 2;
    options.container_memory_mb = 6000;
    options.am_vcores = 0;
    auto report = client.Run("snv-calling", "fcfs", options);
    EXPECT_TRUE(report.ok() && report->status.ok());
    return report->Makespan();
  };
  double small = run_scale(2);
  double large = run_scale(16);
  EXPECT_LT(large, 1.25 * small);
  EXPECT_GT(large, 0.75 * small);
}

// Fault tolerance: a workflow survives losing a node mid-run (data is
// replicated; the lost container's task retries elsewhere).
TEST(IntegrationTest, SurvivesNodeCrashMidWorkflow) {
  auto d = SmallDeployment(6);
  ASSERT_TRUE(d.ok());
  Deployment& dep = **d;
  // Crash node 5 shortly into the run.
  dep.engine.ScheduleAt(30.0, [&dep] {
    dep.rm->KillNode(5);
    dep.dfs->KillNode(5);
  });
  HiWayClient client(&dep);
  auto report = client.Run("snv-calling", "data-aware");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 24);
  // No completed task may report the dead node after the crash.
  for (const ProvenanceEvent& ev : dep.provenance->Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.timestamp > 40.0) {
      EXPECT_NE(ev.node, 5);
    }
  }
}

TEST(IntegrationTest, WorkflowFailsCleanlyWhenDataIsLost) {
  // Replication 1 and the only holder of the input dies: unrecoverable.
  auto d = SmallDeployment(3, {{"dfs/replication", "1"}});
  ASSERT_TRUE(d.ok());
  Deployment& dep = **d;
  // Find the holder of the first chunk and kill it immediately.
  auto info = dep.dfs->Stat("/in/1000genomes/chunk0000.fq.gz");
  ASSERT_TRUE(info.ok());
  NodeId holder = info->blocks[0].replicas[0];
  dep.rm->KillNode(holder);
  dep.dfs->KillNode(holder);
  HiWayClient client(&dep);
  HiWayOptions options;
  options.task_retry.max_attempts = 2;
  auto report = client.Run("snv-calling", "fcfs", options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->status.ok());
}

// Reproducibility: executing a trace replays the same task graph and
// produces the same outputs (Sec. 3.5).
TEST(IntegrationTest, TraceReExecutionReproducesOutputs) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  HiWayClient client(d->get());
  auto original = client.Run("montage", "data-aware");
  ASSERT_TRUE(original.ok() && original->status.ok());

  std::string trace =
      SerializeTrace((*d)->provenance->Events());
  auto replay_source = TraceSource::Parse(trace, original->run_id);
  ASSERT_TRUE(replay_source.ok()) << replay_source.status().ToString();
  EXPECT_EQ((*replay_source)->task_count(), 27u);

  // Fresh cluster, only the recorded inputs staged.
  auto d2 = SmallDeployment();
  ASSERT_TRUE(d2.ok());
  // montage inputs are already staged by the recipe; clear everything the
  // original run produced is not present on the fresh deployment anyway.
  HiWayClient client2(d2->get());
  auto replayed = client2.RunSource(replay_source->get(), "fcfs");
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->status.ok()) << replayed->status.ToString();
  EXPECT_EQ(replayed->tasks_completed, 27);
  // Identical output file sets, byte-for-byte sizes.
  for (const std::string& target : (*replay_source)->Targets()) {
    auto a = (*d)->dfs->Stat(target);
    auto b = (*d2)->dfs->Stat(target);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << target;
    EXPECT_EQ(a->size_bytes, b->size_bytes) << target;
  }
}

// Multiple AMs share one YARN cluster (one dedicated AM per workflow).
TEST(IntegrationTest, ConcurrentWorkflowsShareTheCluster) {
  auto d = SmallDeployment(6);
  ASSERT_TRUE(d.ok());
  Deployment& dep = **d;
  auto src1 = CuneiformSource::Parse(
      "deftask a( o : i ) in 'bowtie2';\n"
      "target a( i: '/in/1000genomes/chunk0000.fq.gz' );");
  auto src2 = CuneiformSource::Parse(
      "deftask b( o : i ) in 'varscan';\n"
      "target b( i: '/in/1000genomes/chunk0001.fq.gz' );");
  ASSERT_TRUE(src1.ok() && src2.ok());
  FcfsScheduler sched1, sched2;
  HiWayAm am1(dep.cluster.get(), dep.rm.get(), dep.dfs.get(), &dep.tools,
              dep.provenance.get(), &dep.estimator, HiWayOptions{});
  HiWayAm am2(dep.cluster.get(), dep.rm.get(), dep.dfs.get(), &dep.tools,
              dep.provenance.get(), &dep.estimator, HiWayOptions{});
  ASSERT_TRUE(am1.Submit(src1->get(), &sched1).ok());
  ASSERT_TRUE(am2.Submit(src2->get(), &sched2).ok());
  dep.engine.RunUntilPredicate(
      [&] { return am1.finished() && am2.finished(); });
  EXPECT_TRUE(am1.finished() && am1.report().status.ok());
  EXPECT_TRUE(am2.finished() && am2.report().status.ok());
}

// Hi-WAY vs Tez on identical inputs: both complete, Hi-WAY's data-aware
// run moves fewer remote bytes.
TEST(IntegrationTest, DataAwareMovesFewerBytesThanTez) {
  auto d1 = SmallDeployment(6);
  ASSERT_TRUE(d1.ok());
  HiWayClient client((*d1).get());
  auto hiway_report = client.Run("snv-calling", "data-aware");
  ASSERT_TRUE(hiway_report.ok() && hiway_report->status.ok());
  int64_t hiway_remote = (*d1)->dfs->counters().bytes_read_remote;

  auto d2 = SmallDeployment(6);
  ASSERT_TRUE(d2.ok());
  // Build the equivalent static DAG for Tez.
  std::vector<TaskSpec> tasks;
  TaskId next = 1;
  for (const auto& [chunk, size] : (*d2)->workflows.at("snv-calling").inputs) {
    TaskSpec align;
    align.id = next++;
    align.signature = "bowtie2";
    align.tool = "bowtie2";
    align.input_files = {chunk};
    align.outputs.push_back(
        OutputSpec{"out", chunk + ".sam", {}, false});
    tasks.push_back(std::move(align));
  }
  StaticWorkflowSource source("tez-align", tasks);
  TezAm tez((*d2)->cluster.get(), (*d2)->rm.get(), (*d2)->dfs.get(),
            &(*d2)->tools, TezOptions{});
  ASSERT_TRUE(tez.Submit(&source).ok());
  auto tez_report = tez.RunToCompletion();
  ASSERT_TRUE(tez_report.ok() && tez_report->status.ok());
  int64_t tez_remote = (*d2)->dfs->counters().bytes_read_remote;
  EXPECT_LT(hiway_remote, tez_remote);
}

}  // namespace
}  // namespace hiway
