// Unit and property tests for the JSON parser / serializer.

#include "src/common/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "src/common/random.h"
#include "src/common/strings.h"

namespace hiway {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->as_bool(), true);
  EXPECT_EQ(Json::Parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::Parse("6.02e23")->as_number(), 6.02e23);
  EXPECT_EQ(Json::Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  auto doc = Json::Parse(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
  ASSERT_TRUE(doc.ok());
  const Json* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].Find("b")->is_null());
  EXPECT_TRUE(doc->Find("c")->Find("d")->as_bool());
}

TEST(JsonParseTest, StringEscapes) {
  auto doc = Json::Parse(R"("a\"b\\c\/d\n\tA")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_string(), "a\"b\\c/d\n\tA");
}

TEST(JsonParseTest, UnicodeSurrogatePairs) {
  auto doc = Json::Parse(R"("😀")");  // 😀 U+1F600
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",          "{",          "[1,",      "{\"a\":}", "tru",
      "01",        "1.",         "1e",       "\"\\x\"",  "\"unterminated",
      "[1] extra", "{\"a\" 1}",  "[,]",      "{,}",      "\"\\ud800\"",
      "nan",       "'single'",   "[1 2]",
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(Json::Parse(doc).ok()) << doc;
  }
}

TEST(JsonParseTest, ErrorsCarryLineAndColumn) {
  auto r = Json::Parse("{\n  \"a\": 1,\n  oops\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(JsonParseTest, DeepNestingIsBounded) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonParseTest, PreservesObjectKeyOrder) {
  auto doc = Json::Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(doc.ok());
  std::vector<std::string> keys;
  for (const auto& [k, v] : doc->as_object()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonDumpTest, CompactAndPretty) {
  Json obj = Json::MakeObject();
  obj.Set("name", "hiway");
  obj.Set("tasks", Json(JsonArray{Json(1), Json(2)}));
  EXPECT_EQ(obj.Dump(), R"({"name":"hiway","tasks":[1,2]})");
  std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find("\n  \"name\": \"hiway\""), std::string::npos);
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(static_cast<int64_t>(-7)).Dump(), "-7");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
}

TEST(JsonDumpTest, ControlCharactersEscaped) {
  EXPECT_EQ(Json(std::string("a\x01"
                             "b"))
                .Dump(),
            "\"a\\u0001b\"");
  EXPECT_EQ(Json("tab\t").Dump(), "\"tab\\t\"");
}

TEST(JsonSetTest, OverwritesExistingKey) {
  Json obj = Json::MakeObject();
  obj.Set("k", 1);
  obj.Set("k", 2);
  EXPECT_EQ(obj.as_object().size(), 1u);
  EXPECT_EQ(obj.GetInt("k"), 2);
}

TEST(JsonGettersTest, TypedGettersWithDefaults) {
  auto doc = Json::Parse(R"({"s": "x", "n": 2.5, "b": true, "i": 7})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("s"), "x");
  EXPECT_EQ(doc->GetString("missing", "def"), "def");
  EXPECT_DOUBLE_EQ(doc->GetNumber("n"), 2.5);
  EXPECT_EQ(doc->GetInt("i"), 7);
  EXPECT_TRUE(doc->GetBool("b"));
  EXPECT_EQ(doc->GetString("n", "notstring"), "notstring");  // type mismatch
}

// -------- property: random documents round-trip through Dump/Parse -------

Json RandomJson(Rng* rng, int depth) {
  int pick = depth > 4 ? static_cast<int>(rng->UniformInt(4))
                       : static_cast<int>(rng->UniformInt(6));
  switch (pick) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng->NextDouble() < 0.5);
    case 2: {
      // Mix integral and fractional values.
      if (rng->NextDouble() < 0.5) {
        return Json(static_cast<int64_t>(rng->UniformInt(1000000)) - 500000);
      }
      return Json(rng->Uniform(-1e6, 1e6));
    }
    case 3: {
      std::string s;
      size_t len = rng->UniformInt(12);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng->UniformInt(26));
      }
      if (rng->NextDouble() < 0.3) s += "\"\\\n\t";
      return Json(std::move(s));
    }
    case 4: {
      Json arr = Json::MakeArray();
      size_t n = rng->UniformInt(4);
      for (size_t i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth + 1));
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      size_t n = rng->UniformInt(4);
      for (size_t i = 0; i < n; ++i) {
        obj.Set(StrFormat("k%zu", i), RandomJson(rng, depth + 1));
      }
      return obj;
    }
  }
}

class JsonRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTripTest, DumpParseIsIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    Json doc = RandomJson(&rng, 0);
    for (int indent : {-1, 2}) {
      auto reparsed = Json::Parse(doc.Dump(indent));
      ASSERT_TRUE(reparsed.ok()) << doc.Dump(indent);
      EXPECT_TRUE(doc == *reparsed) << doc.Dump(indent);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- fuzz regressions (tests/fuzz/corpus/json/, docs/fuzzing.md) ---------

TEST(JsonFuzzRegressionTest, OverflowingNumberLiteralIsRejected) {
  // crash_overflow_1e999.json: 1e999 parsed to +inf, which Dump() printed
  // as a bare "inf" token — unparseable, so parse/serialize/parse broke.
  auto parsed = Json::Parse("[1e999]");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("overflows double range"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(JsonFuzzRegressionTest, AsIntSaturatesInsteadOfUndefinedCast) {
  // Galaxy step ids like 1e300 reached as_int()'s bare static_cast, which
  // is undefined behaviour for out-of-range doubles.
  EXPECT_EQ(Json::Parse("1e300")->as_int(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(Json::Parse("-1e300")->as_int(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(Json::Parse("42")->as_int(), 42);
}

TEST(JsonLimitsTest, DepthErrorNamesLimitAndOffset) {
  std::string deep(Json::kMaxDepth + 10, '[');
  auto parsed = Json::Parse(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("Json::kMaxDepth"),
            std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().ToString().find("offset"), std::string::npos);
}

TEST(JsonLimitsTest, InputSizeErrorNamesLimit) {
  std::string big(Json::kMaxInputBytes + 1, ' ');
  auto parsed = Json::Parse(big);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("Json::kMaxInputBytes"),
            std::string::npos)
      << parsed.status().ToString();
}

}  // namespace
}  // namespace hiway
