// Tests for the static language front-ends: Pegasus DAX, Galaxy JSON, and
// re-executable provenance traces.

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/lang/dax_source.h"
#include "src/lang/galaxy_source.h"
#include "src/lang/trace_source.h"

namespace hiway {
namespace {

// ------------------------------------------------------------------- DAX --

constexpr char kSmallDax[] = R"(<?xml version="1.0" encoding="UTF-8"?>
<adag name="diamond">
  <job id="ID01" name="preprocess">
    <argument>-i f.a -o f.b1 -o f.b2</argument>
    <uses file="f.a" link="input" size="1048576"/>
    <uses file="f.b1" link="output" size="524288"/>
    <uses file="f.b2" link="output" size="524288"/>
  </job>
  <job id="ID02" name="findrange">
    <uses file="f.b1" link="input"/>
    <uses file="f.c1" link="output"/>
  </job>
  <job id="ID03" name="findrange">
    <uses file="f.b2" link="input"/>
    <uses file="f.c2" link="output"/>
  </job>
  <job id="ID04" name="analyze">
    <uses file="f.c1" link="input"/>
    <uses file="f.c2" link="input"/>
    <uses file="f.d" link="output" size="2048"/>
  </job>
  <child ref="ID02"><parent ref="ID01"/></child>
  <child ref="ID03"><parent ref="ID01"/></child>
  <child ref="ID04"><parent ref="ID02"/><parent ref="ID03"/></child>
</adag>
)";

TEST(DaxSourceTest, ParsesDiamondWorkflow) {
  auto source = DaxSource::Parse(kSmallDax);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->name(), "diamond");
  EXPECT_EQ((*source)->task_count(), 4u);
  EXPECT_TRUE((*source)->IsStatic());
  // Required input: f.a only; target: f.d only.
  ASSERT_EQ((*source)->required_inputs().size(), 1u);
  EXPECT_EQ((*source)->required_inputs()[0].first, "/dax/f.a");
  EXPECT_EQ((*source)->required_inputs()[0].second, 1048576);
  EXPECT_EQ((*source)->Targets(), std::vector<std::string>{"/dax/f.d"});
}

TEST(DaxSourceTest, TasksCarryFilesSizesAndCommands) {
  auto source = DaxSource::Parse(kSmallDax);
  ASSERT_TRUE(source.ok());
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  const TaskSpec& pre = (*tasks)[0];
  EXPECT_EQ(pre.signature, "preprocess");
  EXPECT_NE(pre.command.find("-i f.a"), std::string::npos);
  EXPECT_EQ(pre.input_files, std::vector<std::string>{"/dax/f.a"});
  ASSERT_EQ(pre.outputs.size(), 2u);
  EXPECT_EQ(pre.outputs[0].path, "/dax/f.b1");
  ASSERT_TRUE(pre.outputs[0].size_bytes.has_value());
  EXPECT_EQ(*pre.outputs[0].size_bytes, 524288);
  // findrange outputs without size attribute: tool model decides.
  EXPECT_FALSE((*tasks)[1].outputs[0].size_bytes.has_value());
}

TEST(DaxSourceTest, CustomFilePrefix) {
  auto source = DaxSource::Parse(kSmallDax, "/montage/run1/");
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->required_inputs()[0].first, "/montage/run1/f.a");
}

TEST(DaxSourceTest, CompletionProtocol) {
  auto source = DaxSource::Parse(kSmallDax);
  ASSERT_TRUE(source.ok());
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  EXPECT_FALSE((*source)->IsDone());
  for (const TaskSpec& t : *tasks) {
    TaskResult r;
    r.id = t.id;
    r.status = Status::OK();
    auto more = (*source)->OnTaskCompleted(r);
    ASSERT_TRUE(more.ok());
    EXPECT_TRUE(more->empty());
  }
  EXPECT_TRUE((*source)->IsDone());
}

TEST(DaxSourceTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(DaxSource::Parse("<dag></dag>").ok());  // wrong root
  EXPECT_FALSE(DaxSource::Parse("<adag></adag>").ok());  // no jobs
  EXPECT_FALSE(
      DaxSource::Parse("<adag><job name=\"x\"/></adag>").ok());  // no id
  EXPECT_FALSE(
      DaxSource::Parse("<adag><job id=\"1\"/></adag>").ok());  // no name
  EXPECT_FALSE(DaxSource::Parse(
                   "<adag><job id=\"1\" name=\"a\"/>"
                   "<job id=\"1\" name=\"b\"/></adag>")
                   .ok());  // dup id
  EXPECT_FALSE(DaxSource::Parse(
                   "<adag><job id=\"1\" name=\"a\">"
                   "<uses file=\"f\" link=\"inout\"/></job></adag>")
                   .ok());  // bad link
  EXPECT_FALSE(DaxSource::Parse(
                   "<adag><job id=\"1\" name=\"a\"/>"
                   "<child ref=\"nope\"/></adag>")
                   .ok());  // dangling child ref
}

// ---------------------------------------------------------------- Galaxy --

std::string SmallGalaxyWorkflow() {
  return R"({
    "a_galaxy_workflow": "true",
    "name": "mini-rnaseq",
    "steps": {
      "0": {"id": 0, "type": "data_input",
            "inputs": [{"name": "reads"}]},
      "1": {"id": 1, "type": "tool",
            "tool_id": "toolshed/repos/devteam/tophat2/tophat2/2.1.0",
            "input_connections": {"input": {"id": 0, "output_name": "output"}},
            "outputs": [{"name": "hits", "type": "bam"}]},
      "2": {"id": 2, "type": "tool",
            "tool_id": "cufflinks",
            "input_connections": {"input": {"id": 1, "output_name": "hits"}},
            "outputs": [{"name": "transcripts", "type": "gtf"}]}
    }
  })";
}

TEST(GalaxySourceTest, ParsesAndResolvesInputs) {
  std::map<std::string, std::string> inputs = {{"reads", "/in/reads.fq"}};
  auto source = GalaxySource::Parse(SmallGalaxyWorkflow(), inputs);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->name(), "mini-rnaseq");
  EXPECT_EQ((*source)->task_count(), 2u);
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ((*tasks)[0].signature, "tophat2");  // versioned id stripped
  EXPECT_EQ((*tasks)[0].input_files,
            std::vector<std::string>{"/in/reads.fq"});
  EXPECT_EQ((*tasks)[1].signature, "cufflinks");  // plain id kept
  // Step 2 consumes step 1's "hits" output path.
  EXPECT_EQ((*tasks)[1].input_files[0], (*tasks)[0].outputs[0].path);
  // Unconsumed outputs are targets.
  EXPECT_EQ((*source)->Targets().size(), 1u);
}

TEST(GalaxySourceTest, UnresolvedPlaceholderFails) {
  auto source = GalaxySource::Parse(SmallGalaxyWorkflow(), {});
  ASSERT_FALSE(source.ok());
  EXPECT_TRUE(source.status().IsInvalidArgument());
  EXPECT_NE(source.status().message().find("reads"), std::string::npos);
}

TEST(GalaxySourceTest, FallbackInputByStepId) {
  std::map<std::string, std::string> inputs = {{"input_0", "/in/x.fq"}};
  auto source = GalaxySource::Parse(SmallGalaxyWorkflow(), inputs);
  ASSERT_TRUE(source.ok());
  auto tasks = (*source)->Init();
  EXPECT_EQ((*tasks)[0].input_files[0], "/in/x.fq");
}

TEST(GalaxySourceTest, MultiInputConnections) {
  const char* doc = R"({
    "name": "merge",
    "steps": {
      "0": {"id": 0, "type": "data_input", "inputs": [{"name": "a"}]},
      "1": {"id": 1, "type": "data_input", "inputs": [{"name": "b"}]},
      "2": {"id": 2, "type": "tool", "tool_id": "merger",
            "input_connections": {"parts": [
               {"id": 0, "output_name": "output"},
               {"id": 1, "output_name": "output"}]},
            "outputs": [{"name": "merged", "type": "tab"}]}
    }
  })";
  auto source = GalaxySource::Parse(
      doc, {{"a", "/in/a"}, {"b", "/in/b"}});
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  auto tasks = (*source)->Init();
  EXPECT_EQ((*tasks)[0].input_files.size(), 2u);
}

TEST(GalaxySourceTest, RejectsBadDocuments) {
  EXPECT_FALSE(GalaxySource::Parse("[]", {}).ok());
  EXPECT_FALSE(GalaxySource::Parse("{\"name\":\"x\"}", {}).ok());
  EXPECT_FALSE(GalaxySource::Parse(
                   R"({"steps": {"0": {"id":0,"type":"tool",
                       "tool_id":"t",
                       "input_connections":{"i":{"id":7}}}}})",
                   {})
                   .ok());  // connection to unknown step
  EXPECT_FALSE(GalaxySource::Parse(
                   R"({"steps": {"0": {"id":0,"type":"tool"}}})", {})
                   .ok());  // tool step without tool_id
}

// ----------------------------------------------------------------- trace --

std::vector<ProvenanceEvent> RecordedRun() {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("two-step", 0.0);
  TaskSpec t1;
  t1.id = 1;
  t1.signature = "align";
  t1.tool = "bowtie2";
  t1.command = "bowtie2 -x ref reads.fq";
  manager.RecordTaskStart(run, t1, 0, "node-000", 1.0);
  manager.RecordFileStageIn(run, 1, "/in/reads.fq", 1000, 0.2, 1.2);
  TaskResult r1;
  r1.id = 1;
  r1.signature = "align";
  r1.node = 0;
  r1.started_at = 1.0;
  r1.finished_at = 11.0;
  r1.status = Status::OK();
  manager.RecordTaskEnd(run, r1, "node-000");
  manager.RecordFileStageOut(run, 1, "/work/a.sam", 1500, 0.3, 11.3);
  TaskSpec t2;
  t2.id = 2;
  t2.signature = "sort";
  t2.tool = "samtools-sort";
  manager.RecordTaskStart(run, t2, 1, "node-001", 12.0);
  manager.RecordFileStageIn(run, 2, "/work/a.sam", 1500, 0.2, 12.2);
  TaskResult r2;
  r2.id = 2;
  r2.signature = "sort";
  r2.node = 1;
  r2.started_at = 12.0;
  r2.finished_at = 20.0;
  r2.status = Status::OK();
  manager.RecordTaskEnd(run, r2, "node-001");
  manager.RecordFileStageOut(run, 2, "/work/a.bam", 600, 0.1, 20.1);
  manager.EndWorkflow(run, 21.0, true);
  return manager.Events();
}

TEST(TraceSourceTest, RebuildsTaskGraphFromTrace) {
  auto source = TraceSource::FromEvents(RecordedRun());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->task_count(), 2u);
  EXPECT_TRUE((*source)->IsStatic());
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  const TaskSpec& align = (*tasks)[0];
  EXPECT_EQ(align.signature, "align");
  EXPECT_EQ(align.tool, "bowtie2");  // recorded tool survives the trip
  EXPECT_EQ(align.command, "bowtie2 -x ref reads.fq");
  EXPECT_EQ(align.input_files, std::vector<std::string>{"/in/reads.fq"});
  ASSERT_EQ(align.outputs.size(), 1u);
  EXPECT_EQ(align.outputs[0].path, "/work/a.sam");
  EXPECT_EQ(*align.outputs[0].size_bytes, 1500);  // recorded size replayed
  // Required inputs / targets derived from the file graph.
  ASSERT_EQ((*source)->required_inputs().size(), 1u);
  EXPECT_EQ((*source)->required_inputs()[0].first, "/in/reads.fq");
  EXPECT_EQ((*source)->Targets(), std::vector<std::string>{"/work/a.bam"});
}

TEST(TraceSourceTest, RoundTripsThroughSerializedText) {
  std::string text = SerializeTrace(RecordedRun());
  auto source = TraceSource::Parse(text);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->task_count(), 2u);
  EXPECT_EQ((*source)->name(), "two-step-replay");
}

TEST(TraceSourceTest, SelectsRequestedRun) {
  auto events = RecordedRun();
  auto more = RecordedRun();  // same ids but run_id "two-step-run-0" again
  for (ProvenanceEvent& ev : more) ev.run_id = "other-run";
  events.insert(events.end(), more.begin(), more.end());
  auto source = TraceSource::FromEvents(events, "other-run");
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->name(), "two-step-replay");
  EXPECT_EQ((*source)->task_count(), 2u);
}

TEST(TraceSourceTest, FailedRunsAreNotReExecutable) {
  auto events = RecordedRun();
  // Mark the sort task's end as failed and drop no other events.
  for (ProvenanceEvent& ev : events) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.signature == "sort") {
      ev.success = false;
    }
  }
  auto source = TraceSource::FromEvents(events);
  EXPECT_FALSE(source.ok());
  EXPECT_TRUE(source.status().IsInvalidArgument());
}

TEST(TraceSourceTest, EmptyTraceRejected) {
  EXPECT_FALSE(TraceSource::Parse("").ok());
  EXPECT_FALSE(TraceSource::FromEvents({}).ok());
}

// --- fuzz regressions and negative-case tables (docs/fuzzing.md) ---------
// Every malformed input must fail with an error naming the offending
// token, id, or file — the matching fuzz corpora keep the original
// crashing inputs under tests/fuzz/corpus/<target>/.

void ExpectParseErrorNaming(const Status& status, const std::string& token) {
  EXPECT_NE(status.ToString().find(token), std::string::npos)
      << "error does not name '" << token << "': " << status.ToString();
}

TEST(DaxSourceTest, SelfDependencyRejected) {
  // crash_self_dependency.dax: a job using the same file as input and
  // output produced a task depending on itself; schedulers saw a cycle.
  auto source = DaxSource::Parse(R"(<adag name="loop">
    <job id="j" name="t">
      <uses file="x" link="input"/>
      <uses file="x" link="output" size="1"/>
    </job></adag>)");
  ASSERT_FALSE(source.ok());
  ExpectParseErrorNaming(source.status(), "invalid DAX task graph");
  ExpectParseErrorNaming(source.status(), "self-dependency");
}

TEST(DaxSourceTest, MalformedSizesNameTheJobAndToken) {
  auto bad = DaxSource::Parse(R"(<adag name="w"><job id="j1" name="t">
    <uses file="o" link="output" size="12abc"/></job></adag>)");
  ASSERT_FALSE(bad.ok());
  ExpectParseErrorNaming(bad.status(), "12abc");
  ExpectParseErrorNaming(bad.status(), "j1");

  auto negative = DaxSource::Parse(R"(<adag name="w"><job id="j2" name="t">
    <uses file="o" link="output" size="-4"/></job></adag>)");
  ASSERT_FALSE(negative.ok());
  ExpectParseErrorNaming(negative.status(), "negative size");
  ExpectParseErrorNaming(negative.status(), "j2");
}

TEST(GalaxySourceTest, DuplicateStepIdsRejected) {
  // crash_duplicate_id.ga: two steps with the same id collided on one
  // task id, so the rebuilt graph had duplicate producers.
  auto source = GalaxySource::Parse(
      R"({"steps": {"a": {"id": 3, "tool_id": "t"},
                    "b": {"id": 3, "tool_id": "u"}}})",
      {});
  ASSERT_FALSE(source.ok());
  ExpectParseErrorNaming(source.status(), "duplicate Galaxy step id 3");
}

TEST(GalaxySourceTest, OutOfRangeStepIdsRejected) {
  // "id": 1e300 saturates to INT64_MAX under the fixed as_int(); the
  // parser bounds ids so task.id = id + 1 cannot overflow.
  auto source = GalaxySource::Parse(
      R"({"steps": {"0": {"id": 1e300, "tool_id": "t"}}})", {});
  ASSERT_FALSE(source.ok());
  ExpectParseErrorNaming(source.status(), "out-of-range id");
}

TEST(TraceSourceTest, NonPositiveTaskIdsRejected) {
  // crash_negative_task_id.trace: task_id -5 flowed into TaskSpec.id and
  // violated the scheduler's positive-id contract.
  auto source = TraceSource::Parse(
      "{\"type\": \"workflow-start\", \"run_id\": \"r1\", "
      "\"workflow\": \"w\"}\n"
      "{\"type\": \"task-start\", \"run_id\": \"r1\", \"task_id\": -5, "
      "\"signature\": \"t\"}\n"
      "{\"type\": \"task-end\", \"run_id\": \"r1\", \"task_id\": -5, "
      "\"success\": true}\n");
  ASSERT_FALSE(source.ok());
  ExpectParseErrorNaming(source.status(), "non-positive task id -5");
}

TEST(TraceSourceTest, CorruptStageEventsRejected) {
  const char* header =
      "{\"type\": \"workflow-start\", \"run_id\": \"r1\", "
      "\"workflow\": \"w\"}\n"
      "{\"type\": \"task-start\", \"run_id\": \"r1\", \"task_id\": 1, "
      "\"signature\": \"t\"}\n";
  auto negative_size = TraceSource::Parse(
      std::string(header) +
      "{\"type\": \"file-stage-out\", \"run_id\": \"r1\", \"task_id\": 1, "
      "\"file\": \"/out\", \"size_bytes\": -9}\n"
      "{\"type\": \"task-end\", \"run_id\": \"r1\", \"task_id\": 1, "
      "\"success\": true}\n");
  ASSERT_FALSE(negative_size.ok());
  ExpectParseErrorNaming(negative_size.status(), "negative size -9");

  auto empty_path = TraceSource::Parse(
      std::string(header) +
      "{\"type\": \"file-stage-in\", \"run_id\": \"r1\", \"task_id\": 1, "
      "\"size_bytes\": 5}\n"
      "{\"type\": \"task-end\", \"run_id\": \"r1\", \"task_id\": 1, "
      "\"success\": true}\n");
  ASSERT_FALSE(empty_path.ok());
  ExpectParseErrorNaming(empty_path.status(), "empty file path");
}

}  // namespace
}  // namespace hiway
