// Tests for the Fig. 6 utilisation accounting (worker-side flow statistics
// and the master-load cost model).

#include "src/core/metrics.h"

#include <gtest/gtest.h>

namespace hiway {
namespace {

TEST(MasterLoadTest, ZeroDurationYieldsZeroLoad) {
  MasterLoadInputs inputs;
  MasterLoad load = ComputeMasterLoad(inputs);
  EXPECT_DOUBLE_EQ(load.hadoop_master.cpu_load, 0.0);
  EXPECT_DOUBLE_EQ(load.hiway_am.cpu_load, 0.0);
}

TEST(MasterLoadTest, LoadGrowsWithClusterSize) {
  MasterLoadInputs small;
  small.duration_s = 1000.0;
  small.num_workers = 1;
  small.mean_running_containers = 1;
  MasterLoadInputs big = small;
  big.num_workers = 128;
  big.mean_running_containers = 128;
  MasterLoad ls = ComputeMasterLoad(small);
  MasterLoad lb = ComputeMasterLoad(big);
  EXPECT_GT(lb.hadoop_master.cpu_load, ls.hadoop_master.cpu_load);
  EXPECT_GT(lb.hiway_am.cpu_load, ls.hiway_am.cpu_load);
  EXPECT_GT(lb.hadoop_master.net_mbps, ls.hadoop_master.net_mbps);
}

TEST(MasterLoadTest, StaysFarBelowCapacityAtPaperScale) {
  // 128 workers, ~6 h run, realistic op counts from the weak-scaling
  // experiment: the paper's headline observation is < 5 % utilisation.
  MasterLoadInputs inputs;
  inputs.duration_s = 6.0 * 3600;
  inputs.num_workers = 128;
  inputs.mean_running_containers = 128;
  inputs.rm.requests = 5000;
  inputs.rm.allocations = 5000;
  inputs.rm.releases = 5000;
  inputs.dfs.metadata_ops = 200000;
  inputs.am_decisions = 5000;
  inputs.provenance_events = 30000;
  MasterLoad load = ComputeMasterLoad(inputs);
  EXPECT_LT(load.hadoop_master.cpu_load, 0.10);  // < 5 % of 2 cores
  EXPECT_LT(load.hiway_am.cpu_load, 0.10);
  EXPECT_GT(load.hadoop_master.cpu_load, 0.0);
}

TEST(MasterLoadTest, MetadataOpsDriveNameNodeShare) {
  MasterLoadInputs base;
  base.duration_s = 1000.0;
  base.num_workers = 4;
  MasterLoadInputs busy = base;
  busy.dfs.metadata_ops = 1000000;
  EXPECT_GT(ComputeMasterLoad(busy).hadoop_master.cpu_load,
            ComputeMasterLoad(base).hadoop_master.cpu_load);
  EXPECT_GT(ComputeMasterLoad(busy).hadoop_master.io_utilization,
            ComputeMasterLoad(base).hadoop_master.io_utilization);
}

TEST(WorkerUtilizationTest, ReadsFlowStatistics) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 2;
  node.disk_bw_mbps = 100.0;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(2, node, 1000.0));
  // Saturate node 0's CPU for 10 s; leave node 1 idle.
  net.StartFlow({{cluster.cpu(0)}, 20.0, kNoRateCap, 1.0, {}});
  net.StartFlow({{cluster.disk(0)}, 500.0, kNoRateCap, 1.0, {}});
  engine.Run();
  RoleUtilization busy = WorkerUtilization(net, cluster, 0);
  RoleUtilization idle = WorkerUtilization(net, cluster, 1);
  EXPECT_GT(busy.cpu_load, 1.5);
  EXPECT_GT(busy.io_utilization, 0.4);
  EXPECT_DOUBLE_EQ(idle.cpu_load, 0.0);
  RoleUtilization mean = MeanWorkerUtilization(net, cluster, 0, 1);
  EXPECT_NEAR(mean.cpu_load, busy.cpu_load / 2.0, 1e-9);
}

}  // namespace
}  // namespace hiway
