// Tests for the execution-tracing subsystem (src/obs/): ring-buffer
// integrity under concurrent writers, critical-path extraction against
// brute-force enumeration, exporter round-trips, and an end-to-end
// traced deployment run.

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/core/client.h"
#include "src/infra/karamel.h"
#include "src/obs/exporters.h"
#include "src/obs/trace_analyzer.h"
#include "src/obs/tracer.h"

namespace hiway {
namespace {

// ---- TraceRing / Tracer ---------------------------------------------------

// N threads each record M distinguishable events; below per-ring
// capacity nothing is dropped and every event survives un-torn.
TEST(TracerTest, ConcurrentWritersNeverDropOrTearBelowCapacity) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  Tracer tracer(/*clock=*/nullptr, /*ring_capacity=*/4096);
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int e = 0; e < kPerThread; ++e) {
        TraceEvent ev;
        ev.category = SpanCategory::kTask;
        ev.phase = SpanPhase::kInstant;
        ev.name = "payload";
        // Distinguishable payload; torn writes would break the
        // app/task/aux consistency checked below.
        ev.app = t;
        ev.task = e;
        ev.aux = static_cast<int64_t>(t) * kPerThread + e;
        ev.value = static_cast<double>(ev.aux);
        ev.timestamp = 1.0;  // explicit so no clock is consulted
        tracer.Record(ev);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  TracerStats stats = tracer.Stats();
  EXPECT_EQ(stats.recorded, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.rings, kThreads);

  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<int64_t> seen;
  for (const TraceEvent& ev : events) {
    // No tear: all fields of one event agree with each other.
    EXPECT_EQ(ev.aux, ev.app * kPerThread + ev.task);
    EXPECT_EQ(ev.value, static_cast<double>(ev.aux));
    EXPECT_TRUE(seen.insert(ev.aux).second) << "duplicate event " << ev.aux;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
  // Sequence numbers are unique too (one atomic counter across rings).
  std::set<uint64_t> seqs;
  for (const TraceEvent& ev : events) seqs.insert(ev.seq);
  EXPECT_EQ(seqs.size(), events.size());
}

TEST(TracerTest, OverflowOverwritesOldestAndCountsDrops) {
  Tracer tracer(/*clock=*/nullptr, /*ring_capacity=*/16);
  tracer.set_enabled(true);
  for (int e = 0; e < 100; ++e) {
    TraceEvent ev;
    ev.name = "e";
    ev.task = e;
    ev.timestamp = static_cast<double>(e);
    tracer.Record(ev);
  }
  TracerStats stats = tracer.Stats();
  EXPECT_EQ(stats.recorded, 100u);
  EXPECT_EQ(stats.dropped, 84u);
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 16u);
  // The survivors are exactly the newest 16, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].task, static_cast<int64_t>(84 + i));
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  TraceEvent ev;
  ev.name = "ignored";
  tracer.Record(ev);
  tracer.Instant(SpanCategory::kTask, "ignored");
  EXPECT_EQ(tracer.Stats().recorded, 0u);
  EXPECT_TRUE(tracer.Drain().empty());
}

TEST(TracerTest, ClearForgetsEventsAndKeepsRingsUsable) {
  Tracer tracer(/*clock=*/nullptr, /*ring_capacity=*/64);
  tracer.set_enabled(true);
  tracer.Instant(SpanCategory::kTask, "before", -1, -1, -1, -1, 0.0, -1);
  EXPECT_EQ(tracer.Drain().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Drain().empty());
  tracer.Instant(SpanCategory::kTask, "after", -1, -1, -1, -1, 0.0, -1);
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after");
}

// ---- TraceAnalyzer / critical path ---------------------------------------

/// Hand-built task: emits the span taxonomy the AM produces.
struct FakeTask {
  int64_t id;
  double ready, alloc, start, end;
  double stage = 0.0;
  std::vector<int64_t> deps;
};

std::vector<TraceEvent> EventsFor(const std::vector<FakeTask>& tasks,
                                  double wf_end) {
  std::vector<TraceEvent> events;
  uint64_t seq = 0;
  auto push = [&](SpanCategory cat, SpanPhase ph, const char* name, double t,
                  int64_t task, double value = 0.0, int64_t aux = -1) {
    TraceEvent ev;
    ev.category = cat;
    ev.phase = ph;
    ev.name = name;
    ev.timestamp = t;
    ev.seq = seq++;
    ev.app = 1;
    ev.task = task;
    ev.value = value;
    ev.aux = aux;
    events.push_back(ev);
  };
  push(SpanCategory::kWorkflow, SpanPhase::kBegin, "workflow", 0.0, -1);
  for (const FakeTask& t : tasks) {
    push(SpanCategory::kTask, SpanPhase::kInstant, "task_ready", t.ready,
         t.id);
    push(SpanCategory::kTask, SpanPhase::kBegin, "localize", t.alloc, t.id);
    push(SpanCategory::kTask, SpanPhase::kEnd, "localize", t.start, t.id,
         t.start - t.alloc);
    push(SpanCategory::kTask, SpanPhase::kBegin, "execute", t.start, t.id);
    push(SpanCategory::kTask, SpanPhase::kEnd, "execute", t.end, t.id,
         t.end - t.start);
    if (t.stage > 0.0) {
      push(SpanCategory::kTask, SpanPhase::kInstant, "stage_in", t.end, t.id,
           t.stage);
    }
    for (int64_t d : t.deps) {
      push(SpanCategory::kTask, SpanPhase::kInstant, "task_dep", t.ready,
           t.id, 0.0, d);
    }
  }
  push(SpanCategory::kWorkflow, SpanPhase::kEnd, "workflow", wf_end, -1,
       wf_end);
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.seq < b.seq;
            });
  return events;
}

/// Brute force: enumerate every dependency-ordered chain, return the
/// maximum total weight.
double BruteForceLongestChain(const std::map<int64_t, TaskTimeline>& tasks) {
  double best = 0.0;
  std::function<void(int64_t, double)> walk = [&](int64_t id, double acc) {
    const TaskTimeline& t = tasks.at(id);
    acc += t.TotalSeconds();
    best = std::max(best, acc);
    for (int64_t d : t.deps) walk(d, acc);
  };
  for (const auto& [id, t] : tasks) walk(id, 0.0);
  return best;
}

TEST(TraceAnalyzerTest, CriticalPathMatchesBruteForceOnHandBuiltDag) {
  // Diamond with a long tail:
  //   1 -> {2, 3} -> 4 -> 5, where 3 is slower than 2 and 4 waited.
  std::vector<FakeTask> dag = {
      {1, 0.0, 1.0, 2.0, 10.0, 0.5, {}},
      {2, 10.0, 11.0, 12.0, 15.0, 0.0, {1}},
      {3, 10.0, 11.0, 12.0, 20.0, 1.0, {1}},
      {4, 20.0, 25.0, 26.0, 30.0, 0.0, {2, 3}},
      {5, 30.0, 30.5, 31.0, 33.0, 0.0, {4}},
  };
  TraceAnalyzer analyzer(EventsFor(dag, 33.0));
  ASSERT_EQ(analyzer.tasks().size(), 5u);

  CriticalPathReport report = analyzer.CriticalPath();
  double brute = BruteForceLongestChain(analyzer.tasks());
  EXPECT_NEAR(report.total_s, brute, 1e-9);
  // The chain is 1 -> 3 -> 4 -> 5 (3 dominates 2).
  ASSERT_EQ(report.steps.size(), 4u);
  EXPECT_EQ(report.steps[0].task, 1);
  EXPECT_EQ(report.steps[1].task, 3);
  EXPECT_EQ(report.steps[2].task, 4);
  EXPECT_EQ(report.steps[3].task, 5);
  // Segment sums reconcile with the total.
  EXPECT_NEAR(report.wait_s + report.data_s + report.compute_s,
              report.total_s, 1e-9);
  EXPECT_EQ(report.makespan_s, 33.0);
  // Task 4's queue wait (20 -> 25) must show up as wait attribution.
  EXPECT_GE(report.wait_s, 5.0);
  EXPECT_FALSE(report.Summary().empty());
}

TEST(TraceAnalyzerTest, CriticalPathMatchesBruteForceOnRandomDags) {
  // Seeded pseudo-random layered DAGs; deps always point at lower ids so
  // the graph is acyclic by construction.
  uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state >> 33);
  };
  for (int round = 0; round < 20; ++round) {
    int n = 2 + static_cast<int>(next() % 10);
    std::vector<FakeTask> dag;
    double t0 = 0.0;
    for (int i = 1; i <= n; ++i) {
      FakeTask t;
      t.id = i;
      t.ready = t0;
      t.alloc = t.ready + (next() % 50) / 10.0;
      t.start = t.alloc + 0.5;
      t.end = t.start + 1.0 + (next() % 100) / 10.0;
      t.stage = (next() % 20) / 10.0;
      for (int d = 1; d < i; ++d) {
        if (next() % 3 == 0) t.deps.push_back(d);
      }
      t0 += (next() % 30) / 10.0;
      dag.push_back(t);
    }
    TraceAnalyzer analyzer(EventsFor(dag, t0 + 100.0));
    EXPECT_NEAR(analyzer.CriticalPath().total_s,
                BruteForceLongestChain(analyzer.tasks()), 1e-9)
        << "round " << round;
  }
}

TEST(TraceAnalyzerTest, RetryKeepsLastCompletedAttempt) {
  std::vector<TraceEvent> events;
  FakeTask attempt1{7, 0.0, 1.0, 2.0, 5.0, 0.0, {}};
  FakeTask attempt2{7, 6.0, 8.0, 9.0, 12.0, 0.0, {}};
  std::vector<TraceEvent> both = EventsFor({attempt1}, 0.0);
  std::vector<TraceEvent> second = EventsFor({attempt2}, 12.0);
  // Merge, keeping order (drop the first run's workflow end at 0.0).
  for (const TraceEvent& ev : both) {
    if (ev.phase == SpanPhase::kEnd &&
        ev.category == SpanCategory::kWorkflow) {
      continue;
    }
    events.push_back(ev);
  }
  for (const TraceEvent& ev : second) {
    if (ev.phase == SpanPhase::kBegin &&
        ev.category == SpanCategory::kWorkflow) {
      continue;
    }
    events.push_back(ev);
  }
  TraceAnalyzer analyzer(std::move(events));
  ASSERT_EQ(analyzer.tasks().size(), 1u);
  const TaskTimeline& t = analyzer.tasks().at(7);
  EXPECT_EQ(t.ready_at, 6.0);
  EXPECT_EQ(t.finished_at, 12.0);
  EXPECT_EQ(t.attempts, 2);
}

// ---- Exporters ------------------------------------------------------------

TEST(ExportersTest, ChromeTraceRoundTripsThroughParser) {
  std::vector<FakeTask> dag = {
      {1, 0.0, 1.0, 2.0, 10.0, 0.5, {}},
      {2, 10.0, 11.0, 12.0, 15.0, 0.0, {1}},
  };
  std::vector<TraceEvent> events = EventsFor(dag, 15.0);
  std::string json = ExportChromeTrace(events);

  auto parsed = Json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* list = parsed->Find("traceEvents");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_FALSE(list->as_array().empty());
  int complete = 0, instant = 0;
  for (const Json& ev : list->as_array()) {
    ASSERT_TRUE(ev.is_object());
    // Chrome trace_event required fields.
    EXPECT_FALSE(ev.GetString("name").empty());
    EXPECT_FALSE(ev.GetString("ph").empty());
    ASSERT_NE(ev.Find("ts"), nullptr);
    ASSERT_NE(ev.Find("pid"), nullptr);
    ASSERT_NE(ev.Find("tid"), nullptr);
    std::string ph = ev.GetString("ph");
    if (ph == "X") {
      ++complete;
      ASSERT_NE(ev.Find("dur"), nullptr);
      EXPECT_GE(ev.GetNumber("dur"), 0.0);
    } else {
      EXPECT_EQ(ph, "i");
      ++instant;
    }
  }
  // Each task contributes localize + execute complete events, plus the
  // workflow span: 2*2 + 1 = 5 "X" events.
  EXPECT_EQ(complete, 5);
  EXPECT_GT(instant, 0);
  // Timestamps are microseconds: task 1's execute begins at 2s = 2e6 us.
  bool found_execute = false;
  for (const Json& ev : list->as_array()) {
    if (ev.GetString("name") == "execute" && ev.GetInt("tid") == 1) {
      found_execute = true;
      EXPECT_NEAR(ev.GetNumber("ts"), 2e6, 1.0);
      EXPECT_NEAR(ev.GetNumber("dur"), 8e6, 1.0);
    }
  }
  EXPECT_TRUE(found_execute);
}

TEST(ExportersTest, UnmatchedBeginDegradesToInstant) {
  TraceEvent ev;
  ev.category = SpanCategory::kTask;
  ev.phase = SpanPhase::kBegin;
  ev.name = "dangling";
  ev.timestamp = 1.0;
  std::string json = ExportChromeTrace({ev});
  auto parsed = Json::Parse(json);
  ASSERT_TRUE(parsed.ok());
  const Json& list = *parsed->Find("traceEvents");
  ASSERT_EQ(list.as_array().size(), 1u);
  EXPECT_EQ(list.as_array()[0].GetString("ph"), "i");
}

TEST(ExportersTest, PrometheusSnapshotCountsSpans) {
  std::vector<FakeTask> dag = {{1, 0.0, 1.0, 2.0, 10.0, 0.5, {}}};
  std::string text = ExportPrometheusText(EventsFor(dag, 10.0));
  EXPECT_NE(text.find("# TYPE hiway_trace_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("hiway_span_total{category=\"task\",name=\"execute\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("hiway_span_seconds_total{category=\"task\",name=\"execute\"}"),
      std::string::npos);
}

// ---- End-to-end: a traced deployment run ---------------------------------

TEST(ObsEndToEndTest, TracedWorkflowYieldsConsistentCriticalPath) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("obs/tracing", "on");
  karamel.SetAttribute("snv/chunks", "6");
  karamel.SetAttribute("snv/chunk_mb", "64");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  auto deployment = karamel.Converge();
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  Deployment* d = deployment->get();
  ASSERT_TRUE(d->tracer.enabled());

  HiWayClient client(d);
  auto report = client.Run("snv-calling", "data-aware", HiWayOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();

  std::vector<TraceEvent> events = d->tracer.Drain();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(d->tracer.Stats().dropped, 0u);

  // The trace covers every layer that was exercised.
  std::set<std::string> names;
  for (const TraceEvent& ev : events) names.insert(ev.name);
  for (const char* expected :
       {"workflow", "task_ready", "localize", "execute",
        "container_requested", "container_allocated", "container",
        "allocation_pass", "am_decision", "task_dep", "prov_append"}) {
    EXPECT_TRUE(names.count(expected) != 0u)
        << "missing span name: " << expected;
  }

  TraceAnalyzer analyzer(events);
  EXPECT_EQ(static_cast<int>(analyzer.tasks().size()),
            report->tasks_completed);
  EXPECT_NEAR(analyzer.makespan(), report->Makespan(), 1e-9);
  CriticalPathReport path = analyzer.CriticalPath();
  EXPECT_GT(path.total_s, 0.0);
  // A dependency chain can never take longer than the whole run.
  EXPECT_LE(path.total_s, report->Makespan() + 1e-9);
  EXPECT_NEAR(path.total_s, BruteForceLongestChain(analyzer.tasks()), 1e-9);
  EXPECT_GT(path.compute_s, 0.0);

  // Both exporters accept the real trace.
  auto parsed = Json::Parse(ExportChromeTrace(events));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->Find("traceEvents")->as_array().empty());
  EXPECT_NE(ExportPrometheusText(events).find("hiway_span_total"),
            std::string::npos);
}

}  // namespace
}  // namespace hiway
