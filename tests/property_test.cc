// System-level property tests: conservation laws of the fair-share model,
// determinism of the simulator, and driver robustness under churn.

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/random.h"
#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/lang/trace_source.h"

namespace hiway {
namespace {

// ---- Flow conservation ----------------------------------------------------

// Property: for any random set of finite flows, each flow completes after
// delivering exactly its demand — i.e. integral(rate dt) == demand — and
// the resource usage integral equals the sum of demands crossing it.
class FlowConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservationTest, DeliveredWorkEqualsDemand) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  SimEngine engine;
  FlowNetwork net(&engine);
  const int kResources = 6;
  std::vector<ResourceId> resources;
  for (int i = 0; i < kResources; ++i) {
    resources.push_back(net.AddResource(StrFormat("r%d", i),
                                        20.0 + 80.0 * rng.NextDouble()));
  }
  struct Probe {
    double demand;
    double started = -1;
    double finished = -1;
    std::vector<ResourceId> path;
  };
  auto probes = std::make_shared<std::vector<Probe>>();
  const int kFlows = 30;
  std::vector<double> per_resource_demand(kResources, 0.0);
  for (int i = 0; i < kFlows; ++i) {
    Probe probe;
    probe.demand = 5.0 + 100.0 * rng.NextDouble();
    size_t a = rng.UniformInt(kResources);
    size_t b = rng.UniformInt(kResources);
    probe.path = {resources[a]};
    if (b != a) probe.path.push_back(resources[b]);
    for (ResourceId r : probe.path) {
      per_resource_demand[static_cast<size_t>(r)] += probe.demand;
    }
    probes->push_back(probe);
  }
  for (int i = 0; i < kFlows; ++i) {
    double start = 10.0 * rng.NextDouble();
    engine.ScheduleAt(start, [probes, i, &net, &engine] {
      (*probes)[static_cast<size_t>(i)].started = engine.Now();
      FlowSpec spec;
      spec.resources = (*probes)[static_cast<size_t>(i)].path;
      spec.demand = (*probes)[static_cast<size_t>(i)].demand;
      spec.on_complete = [probes, i, &engine] {
        (*probes)[static_cast<size_t>(i)].finished = engine.Now();
      };
      net.StartFlow(std::move(spec));
    });
  }
  engine.Run();
  for (const Probe& probe : *probes) {
    ASSERT_GE(probe.finished, probe.started);
    // Lower bound: demand / total capacity of its slowest resource.
    double min_cap = 1e18;
    for (ResourceId r : probe.path) {
      min_cap = std::min(min_cap, net.Capacity(r));
    }
    EXPECT_GE(probe.finished - probe.started + 1e-6,
              probe.demand / min_cap);
  }
  // Per-resource conservation: mean_rate * window == total demand routed
  // through it (all flows completed, nothing active).
  double window = engine.Now();
  for (int i = 0; i < kResources; ++i) {
    ResourceStats stats = net.Stats(resources[static_cast<size_t>(i)]);
    EXPECT_NEAR(stats.mean_rate * window,
                per_resource_demand[static_cast<size_t>(i)],
                per_resource_demand[static_cast<size_t>(i)] * 1e-6 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservationTest,
                         ::testing::Range(1, 11));

// Weighted fairness: two infinite flows with weights w and 1 on one
// resource hold rates in ratio w while both are uncapped.
TEST(FlowWeightTest, RatesProportionalToWeights) {
  for (double w : {2.0, 3.0, 8.0}) {
    SimEngine engine;
    FlowNetwork net(&engine);
    ResourceId r = net.AddResource("r", 90.0);
    FlowSpec heavy;
    heavy.resources = {r};
    heavy.demand = kInfiniteDemand;
    heavy.weight = w;
    FlowId heavy_id = net.StartFlow(std::move(heavy));
    FlowSpec light;
    light.resources = {r};
    light.demand = kInfiniteDemand;
    FlowId light_id = net.StartFlow(std::move(light));
    engine.RunUntil(1.0);
    EXPECT_NEAR(net.CurrentRate(heavy_id) / net.CurrentRate(light_id), w,
                1e-9);
    net.CancelFlow(heavy_id);
    net.CancelFlow(light_id);
  }
}

// ---- Determinism ----------------------------------------------------------

double RunSnvMakespan(uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "6");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("snv/chunks", "12");
  karamel.SetAttribute("snv/chunk_mb", "64");
  karamel.SetAttribute("seed", StrFormat("%llu",
                                         (unsigned long long)seed));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  auto d = karamel.Converge();
  EXPECT_TRUE(d.ok());
  HiWayClient client(d->get());
  HiWayOptions options;
  options.seed = seed;
  auto report = client.Run("snv-calling", "data-aware", options);
  EXPECT_TRUE(report.ok() && report->status.ok());
  return report->Makespan();
}

TEST(DeterminismTest, IdenticalSeedsIdenticalMakespans) {
  double a = RunSnvMakespan(1234);
  double b = RunSnvMakespan(1234);
  EXPECT_DOUBLE_EQ(a, b);  // bit-identical, not just close
}

TEST(DeterminismTest, DifferentSeedsPerturbOnlyNoise) {
  double a = RunSnvMakespan(1);
  double b = RunSnvMakespan(2);
  EXPECT_NE(a, b);                 // placement/noise differ
  EXPECT_NEAR(a / b, 1.0, 0.25);   // but not wildly
}

// ---- Sharded provenance: merge-on-read equivalence ------------------------

// Property: for random event sequences partitioned into random shards,
//   (a) the merged view reproduces the global append order exactly,
//   (b) SerializeTrace(merged view) round-trips through ParseTrace,
//   (c) every LatestRuntime / RuntimeObservations answer matches a
//       brute-force scan of the unsharded reference sequence.
class ShardMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShardMergeProperty, MergedViewMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
  ProvenanceManager manager;

  const int kShardCount = 2 + static_cast<int>(rng.UniformInt(6));
  const int kSignatures = 1 + static_cast<int>(rng.UniformInt(4));
  const int kNodes = 1 + static_cast<int>(rng.UniformInt(4));

  // The unsharded reference: every event in global append order, exactly
  // as a single shared store would have recorded it.
  std::vector<ProvenanceEvent> reference;
  std::vector<std::string> runs;
  auto mirror_tail = [&](const std::string& run) {
    reference.push_back(manager.shard(run)->Events().back());
  };
  for (int i = 0; i < kShardCount; ++i) {
    runs.push_back(
        manager.BeginWorkflow(StrFormat("wf%d", i), rng.Uniform(0, 10)));
    mirror_tail(runs.back());
  }

  const int kEvents = 40 + static_cast<int>(rng.UniformInt(80));
  double now = 10.0;
  for (int i = 0; i < kEvents; ++i) {
    const std::string& run = runs[rng.UniformInt(runs.size())];
    now += rng.Uniform(0.0, 2.0);
    TaskResult result;
    result.id = i + 1;
    result.signature =
        StrFormat("sig%d", static_cast<int>(rng.UniformInt(kSignatures)));
    result.node = static_cast<int32_t>(rng.UniformInt(kNodes));
    result.started_at = now - rng.Uniform(0.5, 5.0);
    result.finished_at = now;
    result.status = rng.NextDouble() < 0.8 ? Status::OK()
                                           : Status::RuntimeError("fail");
    manager.RecordTaskEnd(run, result, StrFormat("node-%03d", result.node));
    mirror_tail(run);
  }
  // Some runs end (sealing their shards), some stay open — both kinds
  // must merge.
  for (size_t i = 0; i < runs.size(); i += 2) {
    manager.EndWorkflow(runs[i], now + 1.0, true);
    mirror_tail(runs[i]);
  }

  // (a) merged order == reference order, byte for byte.
  auto merged = manager.View().Events();
  ASSERT_EQ(merged.size(), reference.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].ToJson().Dump(), reference[i].ToJson().Dump())
        << "event " << i;
  }

  // (b) JSON-lines round-trip of the merged view.
  auto reparsed = ParseTrace(manager.View().ExportTrace());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ((*reparsed)[i].ToJson().Dump(), merged[i].ToJson().Dump());
  }

  // (c) statistics queries vs brute-force scans of the reference.
  for (int s = 0; s < kSignatures; ++s) {
    std::string sig = StrFormat("sig%d", s);
    std::vector<std::pair<int32_t, double>> brute_obs;
    for (const ProvenanceEvent& ev : reference) {
      if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
          ev.signature == sig) {
        brute_obs.emplace_back(ev.node, ev.duration);
      }
    }
    EXPECT_EQ(manager.RuntimeObservations(sig), brute_obs);
    for (int n = 0; n < kNodes; ++n) {
      double brute_latest = -1.0;
      for (const ProvenanceEvent& ev : reference) {
        if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
            ev.signature == sig && ev.node == n) {
          brute_latest = ev.duration;
        }
      }
      auto latest = manager.LatestRuntime(sig, n);
      if (brute_latest < 0) {
        EXPECT_TRUE(latest.status().IsNotFound()) << sig << " node " << n;
      } else {
        ASSERT_TRUE(latest.ok()) << sig << " node " << n;
        EXPECT_DOUBLE_EQ(*latest, brute_latest);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardMergeProperty, ::testing::Range(1, 9));

// Property: any crash prefix of one shard, read through the merged view
// scoped to that run, is a valid allow_incomplete trace replaying
// exactly the completed tasks (the PR 2 failover contract, now against
// sharded storage).
class ShardCrashPrefixProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShardCrashPrefixProperty, CrashPrefixReplaysCompletedTasks) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863);
  ProvenanceManager manager;
  // A decoy shard interleaved with the victim: its events must never
  // leak into the victim's recovery trace.
  std::string victim = manager.BeginWorkflow("victim", 0.0);
  std::string decoy = manager.BeginWorkflow("decoy", 0.0);

  const int kChain = 2 + static_cast<int>(rng.UniformInt(4));
  for (TaskId id = 1; id <= kChain; ++id) {
    TaskSpec spec;
    spec.id = id;
    spec.signature = StrFormat("tool%lld", static_cast<long long>(id));
    spec.tool = spec.signature;
    spec.command = spec.signature + " --run";
    double start = 10.0 * static_cast<double>(id);
    manager.RecordTaskStart(victim, spec, 0, "node-000", start);
    if (id > 1) {
      manager.RecordFileStageIn(
          victim, id, StrFormat("/f%lld", static_cast<long long>(id - 1)),
          100, 0.1, start);
    }
    // Interleave decoy traffic so victim seqs are non-contiguous.
    TaskResult noise;
    noise.id = 100 + id;
    noise.signature = "decoy-tool";
    noise.node = 1;
    noise.started_at = start;
    noise.finished_at = start + 1.0;
    noise.status = Status::OK();
    manager.RecordTaskEnd(decoy, noise, "node-001");
    TaskResult result;
    result.id = id;
    result.signature = spec.signature;
    result.node = 0;
    result.started_at = start;
    result.finished_at = start + 5.0;
    result.status = Status::OK();
    manager.RecordTaskEnd(victim, result, "node-000");
    manager.RecordFileStageOut(victim, id,
                               StrFormat("/f%lld", static_cast<long long>(id)),
                               100, 0.1, start + 5.0);
  }

  // Crash at a random point: seal the shard, truncate its history to a
  // random prefix, and rebuild a source from the merged view of that run
  // alone.
  std::vector<ProvenanceEvent> shard_events =
      manager.shard(victim)->Events();
  size_t cut = 1 + rng.UniformInt(shard_events.size());
  std::vector<ProvenanceEvent> prefix(shard_events.begin(),
                                      shard_events.begin() + cut);
  size_t completed = 0;
  for (const ProvenanceEvent& ev : prefix) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.success) ++completed;
  }
  auto source = TraceSource::FromEvents(prefix, victim,
                                        /*allow_incomplete=*/true);
  if (completed == 0) {
    EXPECT_FALSE(source.ok());
  } else {
    ASSERT_TRUE(source.ok())
        << "cut=" << cut << ": " << source.status().ToString();
    EXPECT_EQ((*source)->task_count(), completed);
  }

  // The full (uncrashed) shard read through ViewOf: same contract via
  // the merged-view entry point, decoy events excluded by construction.
  auto full = TraceSource::FromView(manager.ViewOf({victim}), victim,
                                    /*allow_incomplete=*/true);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ((*full)->task_count(), static_cast<size_t>(kChain));
  auto tasks = (*full)->Init();
  ASSERT_TRUE(tasks.ok());
  for (const TaskSpec& t : *tasks) {
    EXPECT_NE(t.signature, "decoy-tool");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardCrashPrefixProperty,
                         ::testing::Range(1, 13));

// ---- Driver robustness under churn -----------------------------------------

// A wide fan-out with flaky tools and a mid-run node loss still completes
// with every task executed exactly once (successfully).
TEST(ChurnTest, WideFanOutWithFailuresAndNodeLoss) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "8");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok());
  Deployment& dep = **d;

  ToolProfile flaky;
  flaky.name = "flaky-proc";
  flaky.fixed_cpu_seconds = 8.0;
  flaky.failure_probability = 0.15;
  dep.tools.Register(flaky);

  const int kTasks = 120;
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < kTasks; ++i) {
    std::string in = StrFormat("/in/f%03d", i);
    ASSERT_TRUE(dep.dfs->IngestFile(in, 4 << 20).ok());
    TaskSpec t;
    t.id = i + 1;
    t.signature = "flaky-proc";
    t.tool = "flaky-proc";
    t.input_files = {in};
    t.outputs.push_back(
        OutputSpec{"out", StrFormat("/out/f%03d", i), {}, false});
    tasks.push_back(std::move(t));
  }
  StaticWorkflowSource source("churn", tasks);

  dep.engine.ScheduleAt(20.0, [&dep] {
    dep.rm->KillNode(3);
    dep.dfs->KillNode(3);
  });

  HiWayClient client(&dep);
  FcfsScheduler scheduler;
  HiWayOptions options;
  options.task_retry.max_attempts = 25;
  HiWayAm am(dep.cluster.get(), dep.rm.get(), dep.dfs.get(), &dep.tools,
             dep.provenance.get(), &dep.estimator, options);
  ASSERT_TRUE(am.Submit(&source, &scheduler).ok());
  auto report = am.RunToCompletion();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, kTasks);
  EXPECT_GE(report->failed_attempts, 1);  // flakiness actually exercised
  // Every output exists; exactly one successful end per task id.
  std::map<TaskId, int> successes;
  for (const ProvenanceEvent& ev : dep.provenance->Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.success) {
      ++successes[ev.task_id];
    }
  }
  EXPECT_EQ(successes.size(), static_cast<size_t>(kTasks));
  for (const auto& [id, n] : successes) EXPECT_EQ(n, 1);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_TRUE(dep.dfs->Exists(StrFormat("/out/f%03d", i)));
  }
}

// Iterative + failures: k-means converges despite transient check
// failures (retried checks must not double-advance the iteration).
TEST(ChurnTest, IterativeWorkflowSurvivesRetries) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("kmeans/converge_after", "4");
  karamel.SetAttribute("kmeans/points_mb", "8");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok());
  Deployment& dep = **d;
  // Make the step tool flaky. NOTE: the check tool stays reliable — its
  // invocation counter is the synthetic convergence clock.
  auto step = *dep.tools.Find("kmeans-step");
  ToolProfile flaky_step = *step;
  flaky_step.failure_probability = 0.3;
  dep.tools.Register(flaky_step);

  HiWayClient client(&dep);
  HiWayOptions options;
  options.task_retry.max_attempts = 30;
  auto report = client.Run("kmeans", "fcfs", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  // init + 4 x (step + check) distinct tasks, attempts >= completed.
  EXPECT_EQ(report->tasks_completed, 9);
  EXPECT_GE(report->task_attempts, report->tasks_completed);
}

// Decline-based scheduling makes progress even on a uniformly terrible
// cluster (decline budget + blacklist cap guarantee liveness).
TEST(ChurnTest, OnlineMctNeverStallsOnBadClusters) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("cluster/cores", "2");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  auto d = karamel.Converge();
  ASSERT_TRUE(d.ok());
  Deployment& dep = **d;
  // Stress everything: every node looks bad relative to the others.
  for (NodeId n = 0; n < 4; ++n) dep.load->StressCpu(n, 16);
  // Warm the estimator with observations that make all nodes look slow.
  for (NodeId n = 0; n < 4; ++n) dep.estimator.Observe("bowtie2", n, 500.0);

  ASSERT_TRUE(dep.dfs->IngestFile("/in/x", 4 << 20).ok());
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 6; ++i) {
    TaskSpec t;
    t.id = i + 1;
    t.signature = "bowtie2";
    t.tool = "bowtie2";
    t.input_files = {"/in/x"};
    t.outputs.push_back(OutputSpec{"out", StrFormat("/o%d", i), {}, false});
    tasks.push_back(std::move(t));
  }
  StaticWorkflowSource source("stall", tasks);
  HiWayClient client(&dep);
  auto report = client.RunSource(&source, "online-mct");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->status.ok()) << report->status.ToString();
  EXPECT_EQ(report->tasks_completed, 6);
}

}  // namespace
}  // namespace hiway
