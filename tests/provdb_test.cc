// Tests for the embedded provenance database: CRUD, prefix scans,
// durability across re-open, corruption recovery, compaction, and the
// ProvenanceStore adapter.

#include "src/provdb/provdb.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/random.h"
#include "src/common/strings.h"

namespace hiway {
namespace {

class ProvDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           StrFormat("provdb-test-%d-%s", getpid(),
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "prov.db").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ProvDbTest, PutGetDelete) {
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Put("k1", "v1").ok());
  ASSERT_TRUE((*db)->Put("k2", "v2").ok());
  EXPECT_EQ(*(*db)->Get("k1"), "v1");
  EXPECT_TRUE((*db)->Contains("k2"));
  EXPECT_TRUE((*db)->Get("k3").status().IsNotFound());
  ASSERT_TRUE((*db)->Delete("k1").ok());
  EXPECT_FALSE((*db)->Contains("k1"));
  EXPECT_TRUE((*db)->Delete("k1").IsNotFound());
  EXPECT_EQ((*db)->size(), 1u);
}

TEST_F(ProvDbTest, OverwriteKeepsLatest) {
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k", "old").ok());
  ASSERT_TRUE((*db)->Put("k", "new").ok());
  EXPECT_EQ(*(*db)->Get("k"), "new");
  EXPECT_EQ((*db)->size(), 1u);
}

TEST_F(ProvDbTest, SurvivesReopen) {
  {
    auto db = ProvDb::Open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("a", "1").ok());
    ASSERT_TRUE((*db)->Put("b", "2").ok());
    ASSERT_TRUE((*db)->Delete("a").ok());
  }
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->size(), 1u);
  EXPECT_FALSE((*db)->Contains("a"));
  EXPECT_EQ(*(*db)->Get("b"), "2");
  EXPECT_EQ((*db)->corrupt_records_dropped(), 0);
}

TEST_F(ProvDbTest, PrefixScanInKeyOrder) {
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("ev/002", "b").ok());
  ASSERT_TRUE((*db)->Put("ev/001", "a").ok());
  ASSERT_TRUE((*db)->Put("other/1", "x").ok());
  ASSERT_TRUE((*db)->Put("ev/010", "c").ok());
  auto scan = (*db)->Scan("ev/");
  ASSERT_EQ(scan.size(), 3u);
  EXPECT_EQ(scan[0].first, "ev/001");
  EXPECT_EQ(scan[1].first, "ev/002");
  EXPECT_EQ(scan[2].first, "ev/010");
  EXPECT_EQ((*db)->Scan("zzz").size(), 0u);
  EXPECT_EQ((*db)->Scan("").size(), 4u);  // empty prefix = everything
}

TEST_F(ProvDbTest, BinarySafeKeysAndValues) {
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  std::string key("k\0ey", 4);
  std::string value("\x00\xff\x7f binary\n", 10);
  ASSERT_TRUE((*db)->Put(key, value).ok());
  EXPECT_EQ(*(*db)->Get(key), value);
}

TEST_F(ProvDbTest, TornTailIsDroppedOnOpen) {
  {
    auto db = ProvDb::Open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("good", "record").ok());
  }
  {  // Simulate a crash mid-append: write half a record.
    FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x20\x00\x00\x00partial";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->corrupt_records_dropped(), 1);
  EXPECT_EQ(*(*db)->Get("good"), "record");
  // The log was truncated: appends after recovery survive a re-open.
  ASSERT_TRUE((*db)->Put("after", "crash").ok());
  db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(*(*db)->Get("after"), "crash");
}

TEST_F(ProvDbTest, FlippedBitIsDetected) {
  {
    auto db = ProvDb::Open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("k", "aaaaaaaaaaaaaaaa").ok());
  }
  {
    FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);  // flip a byte inside the value
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->corrupt_records_dropped(), 1);
  EXPECT_FALSE((*db)->Contains("k"));
}

TEST_F(ProvDbTest, CompactionReclaimsSpaceAndPreservesData) {
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*db)->Put("hot", StrFormat("version-%d", i)).ok());  // overwrites
  }
  ASSERT_TRUE((*db)->Put("cold", "steady").ok());
  int64_t before = (*db)->log_bytes();
  auto reclaimed = (*db)->Compact();
  ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();
  EXPECT_GT(*reclaimed, 0);
  EXPECT_LT((*db)->log_bytes(), before);
  EXPECT_EQ(*(*db)->Get("hot"), "version-99");
  EXPECT_EQ(*(*db)->Get("cold"), "steady");
  // Compacted log replays correctly.
  db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(*(*db)->Get("hot"), "version-99");
}

TEST_F(ProvDbTest, RandomOpsMatchReferenceMap) {
  Rng rng(2024);
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::string> reference;
  for (int op = 0; op < 2000; ++op) {
    std::string key = StrFormat("k%02d", static_cast<int>(rng.UniformInt(50)));
    double dice = rng.NextDouble();
    if (dice < 0.6) {
      std::string value = StrFormat("v%llu",
                                    (unsigned long long)rng.NextUint64());
      ASSERT_TRUE((*db)->Put(key, value).ok());
      reference[key] = value;
    } else if (dice < 0.85) {
      Status st = (*db)->Delete(key);
      if (reference.erase(key) > 0) {
        EXPECT_TRUE(st.ok());
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else if (dice < 0.95) {
      auto got = (*db)->Get(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(got.status().IsNotFound());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    } else {
      ASSERT_TRUE((*db)->Compact().ok());
    }
  }
  // Reopen and compare everything.
  db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->size(), reference.size());
  for (const auto& [k, v] : reference) {
    EXPECT_EQ(*(*db)->Get(k), v);
  }
}

TEST_F(ProvDbTest, ProvenanceStoreAdapterRoundTrips) {
  auto db = ProvDb::Open(path_);
  ASSERT_TRUE(db.ok());
  // A manager whose every shard lives in the one ProvDb (single-segment
  // legacy layout, still supported through the factory hook).
  ProvDb* raw = db->get();
  ProvenanceManager manager(
      [raw](const std::string&) -> Result<std::unique_ptr<ProvenanceStore>> {
        return std::unique_ptr<ProvenanceStore>(
            std::make_unique<ProvDbProvenanceStore>(raw));
      });
  std::string run = manager.BeginWorkflow("wf", 0.0);
  TaskResult result;
  result.id = 1;
  result.signature = "align";
  result.node = 2;
  result.started_at = 1.0;
  result.finished_at = 11.0;
  result.status = Status::OK();
  manager.RecordTaskEnd(run, result, "node-002");
  manager.EndWorkflow(run, 12.0, true);
  ProvDbProvenanceStore store(raw);
  EXPECT_EQ(store.size(), 3u);
  auto events = store.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].signature, "align");
  EXPECT_DOUBLE_EQ(*manager.LatestRuntime("align", 2), 10.0);

  // A second adapter over the same db continues the sequence.
  ProvDbProvenanceStore store2(db->get());
  EXPECT_EQ(store2.size(), 3u);
  ProvenanceEvent extra;
  extra.type = ProvenanceEventType::kWorkflowStart;
  extra.run_id = "r2";
  store2.Append(extra);
  EXPECT_EQ(store2.Events().size(), 4u);
  store2.Clear();
  EXPECT_EQ(store2.size(), 0u);
}

// ------------------------------------------- multi-segment directories --

class ProvDbDirectoryTest : public ProvDbTest {
 protected:
  std::string SegmentFile(const std::string& id) const {
    return (dir_ / "segments" / (id + ".provlog")).string();
  }
  std::string SegmentsDir() const { return (dir_ / "segments").string(); }
};

TEST_F(ProvDbDirectoryTest, TornTailTruncatesOnlyThatShard) {
  {
    auto dir = ProvDbDirectory::Open(SegmentsDir());
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    auto a = (*dir)->OpenSegment("wf-run-0");
    auto b = (*dir)->OpenSegment("wf-run-1");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*a)->Put("ev/0", "a0").ok());
    ASSERT_TRUE((*a)->Put("ev/1", "a1").ok());
    ASSERT_TRUE((*b)->Put("ev/0", "b0").ok());
  }
  {  // Crash mid-append in shard 0's log only.
    FILE* f = std::fopen(SegmentFile("wf-run-0").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x20\x00\x00\x00partial";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto dir = ProvDbDirectory::Open(SegmentsDir());
  ASSERT_TRUE(dir.ok());
  ASSERT_EQ((*dir)->segment_ids().size(), 2u);
  ProvDb* a = (*dir)->segment("wf-run-0");
  ProvDb* b = (*dir)->segment("wf-run-1");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // The torn shard lost only its tail; the other shard is untouched.
  EXPECT_EQ(a->corrupt_records_dropped(), 1);
  EXPECT_EQ(a->size(), 2u);
  EXPECT_EQ(*a->Get("ev/1"), "a1");
  EXPECT_EQ(b->corrupt_records_dropped(), 0);
  EXPECT_EQ(*b->Get("ev/0"), "b0");
}

TEST_F(ProvDbDirectoryTest, CompactSealedSegmentWhileAnotherAppends) {
  auto dir = ProvDbDirectory::Open(SegmentsDir());
  ASSERT_TRUE(dir.ok());
  auto sealed = (*dir)->OpenSegment("sealed-run");
  auto active = (*dir)->OpenSegment("active-run");
  ASSERT_TRUE(sealed.ok());
  ASSERT_TRUE(active.ok());
  // The sealed shard accumulated overwrites worth reclaiming.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*sealed)->Put("hot-key", StrFormat("v%d", i)).ok());
  }
  ASSERT_TRUE((*active)->Put("ev/before", "x").ok());
  auto reclaimed = (*dir)->CompactSegment("sealed-run");
  ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();
  EXPECT_GT(*reclaimed, 0);
  // The active shard keeps appending through and after the compaction.
  ASSERT_TRUE((*active)->Put("ev/after", "y").ok());
  EXPECT_EQ(*(*sealed)->Get("hot-key"), "v49");
  EXPECT_EQ(*(*active)->Get("ev/after"), "y");
  EXPECT_TRUE((*dir)->CompactSegment("no-such-run").status().IsNotFound());
}

TEST_F(ProvDbDirectoryTest, ReopenRecoversAllSegments) {
  {
    auto dir = ProvDbDirectory::Open(SegmentsDir());
    ASSERT_TRUE(dir.ok());
    for (int i = 0; i < 5; ++i) {
      auto seg = (*dir)->OpenSegment(StrFormat("wf-run-%d", i));
      ASSERT_TRUE(seg.ok());
      ASSERT_TRUE((*seg)->Put("ev/0", StrFormat("payload-%d", i)).ok());
    }
  }
  auto dir = ProvDbDirectory::Open(SegmentsDir());
  ASSERT_TRUE(dir.ok());
  auto ids = (*dir)->segment_ids();
  ASSERT_EQ(ids.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    ProvDb* seg = (*dir)->segment(StrFormat("wf-run-%d", i));
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(*seg->Get("ev/0"), StrFormat("payload-%d", i));
  }
}

TEST_F(ProvDbDirectoryTest, ShardIdsAreSanitisedForTheFilesystem) {
  EXPECT_EQ(ProvDbDirectory::SanitizeShardId("wf-run-0"), "wf-run-0");
  EXPECT_EQ(ProvDbDirectory::SanitizeShardId("a/b c*"), "a_b_c_");
  EXPECT_EQ(ProvDbDirectory::SanitizeShardId(""), "_");
  auto dir = ProvDbDirectory::Open(SegmentsDir());
  ASSERT_TRUE(dir.ok());
  auto seg = (*dir)->OpenSegment("odd/run id");
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE((*seg)->Put("k", "v").ok());
  // Lookup by the original id resolves to the same sanitised segment.
  EXPECT_EQ((*dir)->segment("odd/run id"), *seg);
  EXPECT_TRUE(std::filesystem::exists(SegmentFile("odd_run_id")));
}

// End-to-end: a durable sharded manager survives a restart — prior runs
// come back as sealed shards, queries span old and new history, and new
// run ids / seqs never collide with the adopted past.
TEST_F(ProvDbDirectoryTest, ShardedProvenanceSurvivesRestart) {
  std::string first_run;
  {
    auto sharded = OpenShardedProvenance(SegmentsDir());
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    first_run = sharded->manager->BeginWorkflow("wf", 0.0);
    TaskResult result;
    result.id = 1;
    result.signature = "align";
    result.node = 2;
    result.started_at = 1.0;
    result.finished_at = 11.0;
    result.status = Status::OK();
    sharded->manager->RecordTaskEnd(first_run, result, "node-002");
    sharded->manager->EndWorkflow(first_run, 12.0, true);
  }
  auto sharded = OpenShardedProvenance(SegmentsDir());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ(sharded->manager->shard_count(), 1u);
  ProvenanceShard* adopted = sharded->manager->shard(first_run);
  ASSERT_NE(adopted, nullptr);
  EXPECT_TRUE(adopted->sealed());
  EXPECT_DOUBLE_EQ(*sharded->manager->LatestRuntime("align", 2), 10.0);

  std::string second_run = sharded->manager->BeginWorkflow("wf", 100.0);
  EXPECT_NE(second_run, first_run);
  TaskResult result;
  result.id = 2;
  result.signature = "align";
  result.node = 2;
  result.started_at = 100.0;
  result.finished_at = 103.0;
  result.status = Status::OK();
  sharded->manager->RecordTaskEnd(second_run, result, "node-002");
  // Merged history: adopted events first, new events after (their seqs
  // resumed past the old ones).
  auto events = sharded->manager->Events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().run_id, first_run);
  EXPECT_EQ(events.back().run_id, second_run);
  EXPECT_DOUBLE_EQ(*sharded->manager->LatestRuntime("align", 2), 3.0);
}

TEST(Crc32Test, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard CRC-32 check value).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

}  // namespace
}  // namespace hiway
