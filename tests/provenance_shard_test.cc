// Tests for per-submission provenance sharding: shard isolation under
// concurrent appenders, seal-then-merge ordering, and merge-on-read
// equivalence with a single shared store.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/core/provenance.h"

namespace hiway {
namespace {

TaskResult MakeResult(TaskId id, std::string signature, int32_t node,
                      double start, double end, bool success = true) {
  TaskResult result;
  result.id = id;
  result.signature = std::move(signature);
  result.node = node;
  result.started_at = start;
  result.finished_at = end;
  result.status = success ? Status::OK() : Status::RuntimeError("boom");
  return result;
}

// Interleaved appends from N threads (one per shard, like N concurrent
// AMs) all land in the right shard, with no torn or lost events.
TEST(ProvenanceShardTest, ConcurrentAppendersStayIsolated) {
  constexpr int kShards = 8;
  constexpr int kEventsPerShard = 500;
  ProvenanceManager manager;
  std::vector<std::string> runs;
  for (int i = 0; i < kShards; ++i) {
    runs.push_back(manager.BeginWorkflow(
        StrFormat("wf%d", i), /*now=*/static_cast<double>(i)));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kShards; ++i) {
    threads.emplace_back([&manager, &runs, i] {
      ProvenanceShard* shard = manager.shard(runs[static_cast<size_t>(i)]);
      ASSERT_NE(shard, nullptr);
      for (int e = 0; e < kEventsPerShard; ++e) {
        shard->RecordTaskEnd(
            MakeResult(e, StrFormat("sig-%d-%d", i, e), i,
                       static_cast<double>(e), static_cast<double>(e) + 1.0),
            StrFormat("node-%03d", i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kShards; ++i) {
    ProvenanceShard* shard = manager.shard(runs[static_cast<size_t>(i)]);
    ASSERT_NE(shard, nullptr);
    // workflow-start + the task ends, every one tagged with this shard's
    // run id and carrying the exact payload its writer built (no tears).
    auto events = shard->Events();
    ASSERT_EQ(events.size(), 1u + kEventsPerShard);
    int64_t prev_seq = -1;
    for (const ProvenanceEvent& ev : events) {
      EXPECT_EQ(ev.run_id, runs[static_cast<size_t>(i)]);
      EXPECT_GT(ev.seq, prev_seq);  // ascending within the shard
      prev_seq = ev.seq;
      if (ev.type == ProvenanceEventType::kTaskEnd) {
        EXPECT_EQ(ev.node, i);
        EXPECT_EQ(ev.signature,
                  StrFormat("sig-%d-%lld", i,
                            static_cast<long long>(ev.task_id)));
      }
    }
  }

  // The merged view holds every event exactly once, in ascending seq,
  // with no duplicated or skipped sequence numbers.
  auto merged = manager.Events();
  ASSERT_EQ(merged.size(),
            static_cast<size_t>(kShards) * (1u + kEventsPerShard));
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, static_cast<int64_t>(i));
  }
}

// The merged view reproduces the exact sequence a single shared store
// would have recorded for the same interleaved schedule.
TEST(ProvenanceShardTest, MergedViewEqualsSingleStoreSequence) {
  ProvenanceManager manager;
  InMemoryProvenanceStore single;  // the unsharded baseline, fed in step

  std::string a = manager.BeginWorkflow("alpha", 0.0);
  std::string b = manager.BeginWorkflow("beta", 0.0);
  auto mirror = [&single](const ProvenanceEvent& ev) { single.Append(ev); };
  {
    auto ev = manager.shard(a)->Events();
    mirror(ev[0]);
    ev = manager.shard(b)->Events();
    mirror(ev[0]);
  }
  // A deterministic interleaving across the two runs.
  for (int step = 0; step < 20; ++step) {
    const std::string& run = (step % 3 == 0) ? b : a;
    manager.RecordTaskEnd(
        run, MakeResult(step, StrFormat("t%d", step), step % 4,
                        static_cast<double>(step),
                        static_cast<double>(step) + 2.0),
        "node");
    mirror(manager.shard(run)->Events().back());
  }
  manager.EndWorkflow(a, 30.0, true);
  mirror(manager.shard(a)->Events().back());
  manager.EndWorkflow(b, 31.0, false);
  mirror(manager.shard(b)->Events().back());

  auto merged = manager.View().Events();
  auto baseline = single.Events();
  ASSERT_EQ(merged.size(), baseline.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].ToJson().Dump(), baseline[i].ToJson().Dump())
        << "at " << i;
  }
  // And the statistics queries agree with a single-store-style scan.
  for (int step = 0; step < 20; ++step) {
    std::string sig = StrFormat("t%d", step);
    auto latest = manager.LatestRuntime(sig, step % 4);
    ASSERT_TRUE(latest.ok()) << sig;
    EXPECT_DOUBLE_EQ(*latest, 2.0);
  }
}

// Sealing stops a shard's writes without disturbing the merge: events
// already recorded stay at their merged positions, late appends are
// dropped and counted.
TEST(ProvenanceShardTest, SealThenMergeKeepsOrderAndDropsLateAppends) {
  ProvenanceManager manager;
  std::string crashed = manager.BeginWorkflow("crashed", 0.0);
  std::string healthy = manager.BeginWorkflow("healthy", 0.0);

  manager.RecordTaskEnd(crashed, MakeResult(1, "early", 0, 0.0, 5.0), "n0");
  manager.SealRun(crashed);
  EXPECT_TRUE(manager.shard(crashed)->sealed());

  // A straggling callback from the dead AM: dropped, counted, invisible.
  manager.RecordTaskEnd(crashed, MakeResult(2, "late", 0, 5.0, 9.0), "n0");
  EXPECT_EQ(manager.shard(crashed)->dropped_after_seal(), 1);

  // The healthy run keeps appending; the merge stays gap-free.
  manager.RecordTaskEnd(healthy, MakeResult(3, "after", 1, 6.0, 8.0), "n1");
  auto merged = manager.Events();
  ASSERT_EQ(merged.size(), 4u);  // 2 starts + early + after
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, static_cast<int64_t>(i));
  }
  for (const ProvenanceEvent& ev : merged) {
    EXPECT_NE(ev.signature, "late");
  }
  // Sealing is idempotent.
  manager.SealRun(crashed);
  EXPECT_EQ(manager.shard(crashed)->dropped_after_seal(), 1);
}

// ViewOf scopes queries to the named runs only — the failover path's
// guarantee that one submission never replays another tenant's events.
TEST(ProvenanceShardTest, ViewOfFiltersToNamedRuns) {
  ProvenanceManager manager;
  std::string mine1 = manager.BeginWorkflow("mine", 0.0);
  std::string other = manager.BeginWorkflow("other", 0.0);
  std::string mine2 = manager.BeginWorkflow("mine", 1.0);
  manager.RecordTaskEnd(mine1, MakeResult(1, "shared-sig", 0, 0, 10), "n0");
  manager.RecordTaskEnd(other, MakeResult(1, "shared-sig", 0, 0, 99), "n0");
  manager.RecordTaskEnd(mine2, MakeResult(1, "shared-sig", 0, 20, 25), "n0");

  ProvenanceView view = manager.ViewOf({mine1, mine2, "no-such-run"});
  EXPECT_EQ(view.shard_count(), 2u);
  for (const ProvenanceEvent& ev : view.Events()) {
    EXPECT_NE(ev.run_id, other);
  }
  // The other tenant's 99s observation is invisible; latest is mine2's 5s.
  auto latest = view.LatestRuntime("shared-sig", 0);
  ASSERT_TRUE(latest.ok());
  EXPECT_DOUBLE_EQ(*latest, 5.0);
  auto obs = view.RuntimeObservations("shared-sig");
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_DOUBLE_EQ(obs[0].second, 10.0);
  EXPECT_DOUBLE_EQ(obs[1].second, 5.0);
  // The full view still sees all three.
  EXPECT_EQ(manager.View().RuntimeObservations("shared-sig").size(), 3u);
}

// Foreign events (seq = -1, e.g. a trace imported from another
// installation) demote the merge to timestamp order instead of breaking
// the seq invariant.
TEST(ProvenanceShardTest, ForeignEventsMergeByTimestamp) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("local", 10.0);
  manager.RecordTaskEnd(run, MakeResult(1, "a", 0, 10, 20), "n0");

  auto foreign_store = std::make_unique<InMemoryProvenanceStore>();
  ProvenanceEvent imported;
  imported.type = ProvenanceEventType::kTaskEnd;
  imported.run_id = "imported-run";
  imported.timestamp = 15.0;  // between the local events
  imported.signature = "b";
  imported.duration = 3.0;
  imported.success = true;
  foreign_store->Append(imported);  // appended directly: seq stays -1
  ASSERT_TRUE(
      manager.AdoptShard("imported-run", std::move(foreign_store)).ok());

  auto merged = manager.Events();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].timestamp, 10.0);
  EXPECT_EQ(merged[1].signature, "b");  // slotted by timestamp
  EXPECT_EQ(merged[2].signature, "a");
}

// AdoptShard advances the run and sequence counters past the adopted
// history so new runs never collide with it.
TEST(ProvenanceShardTest, AdoptShardAdvancesCounters) {
  ProvenanceManager manager;
  auto old_store = std::make_unique<InMemoryProvenanceStore>();
  ProvenanceEvent old_ev;
  old_ev.type = ProvenanceEventType::kWorkflowStart;
  old_ev.run_id = "wf-run-7";
  old_ev.workflow_name = "wf";
  old_ev.seq = 41;
  old_ev.timestamp = 5.0;
  old_store->Append(old_ev);
  ASSERT_TRUE(manager.AdoptShard("wf-run-7", std::move(old_store)).ok());
  EXPECT_TRUE(manager.shard("wf-run-7")->sealed());
  EXPECT_EQ(manager.shard("wf-run-7")->workflow_name(), "wf");

  std::string fresh = manager.BeginWorkflow("wf", 100.0);
  EXPECT_EQ(fresh, "wf-run-8");  // counter resumed past the adopted run
  auto events = manager.shard(fresh)->Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 42);  // seq resumed past the adopted history

  // Adopting over an existing run id is rejected.
  EXPECT_FALSE(
      manager
          .AdoptShard("wf-run-7",
                      std::make_unique<InMemoryProvenanceStore>())
          .ok());
}

}  // namespace
}  // namespace hiway
