// Tests for the Provenance Manager: event recording, JSON-lines trace
// round-trips, and the statistics queries feeding adaptive scheduling.

#include "src/core/provenance.h"

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/lang/trace_source.h"

namespace hiway {
namespace {

TaskSpec MakeSpec(TaskId id, std::string signature) {
  TaskSpec spec;
  spec.id = id;
  spec.signature = signature;
  spec.tool = signature;
  spec.command = signature + " --args";
  return spec;
}

TaskResult MakeResult(TaskId id, std::string signature, int32_t node,
                      double start, double end, bool success = true) {
  TaskResult result;
  result.id = id;
  result.signature = std::move(signature);
  result.node = node;
  result.started_at = start;
  result.finished_at = end;
  result.status = success ? Status::OK() : Status::RuntimeError("boom");
  return result;
}

TEST(ProvenanceEventTest, TypeStringsRoundTrip) {
  for (ProvenanceEventType type :
       {ProvenanceEventType::kWorkflowStart, ProvenanceEventType::kWorkflowEnd,
        ProvenanceEventType::kTaskStart, ProvenanceEventType::kTaskEnd,
        ProvenanceEventType::kFileStageIn,
        ProvenanceEventType::kFileStageOut}) {
    auto parsed =
        ProvenanceEventTypeFromString(ProvenanceEventTypeToString(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ProvenanceEventTypeFromString("garbage").ok());
}

TEST(ProvenanceEventTest, JsonRoundTripTaskEnd) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kTaskEnd;
  ev.run_id = "wf-run-0";
  ev.timestamp = 12.5;
  ev.task_id = 42;
  ev.signature = "bowtie2";
  ev.tool = "bowtie2";
  ev.node = 3;
  ev.node_name = "node-003";
  ev.duration = 99.25;
  ev.success = true;
  ev.stdout_value = "aligned";
  auto round = ProvenanceEvent::FromJson(ev.ToJson());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->task_id, 42);
  EXPECT_EQ(round->signature, "bowtie2");
  EXPECT_EQ(round->node, 3);
  EXPECT_DOUBLE_EQ(round->duration, 99.25);
  EXPECT_EQ(round->stdout_value, "aligned");
}

TEST(ProvenanceManagerTest, RecordsWorkflowLifecycle) {
  ProvenanceManager manager;
  std::string run_id = manager.BeginWorkflow("snv", 100.0);
  EXPECT_FALSE(run_id.empty());
  manager.EndWorkflow(run_id, 250.0, true);
  auto events = manager.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, ProvenanceEventType::kWorkflowStart);
  EXPECT_EQ(events[1].type, ProvenanceEventType::kWorkflowEnd);
  EXPECT_DOUBLE_EQ(events[1].total_runtime, 150.0);
  EXPECT_EQ(events[0].run_id, run_id);
  // The run's shard is sealed by the workflow-end event.
  ASSERT_NE(manager.shard(run_id), nullptr);
  EXPECT_TRUE(manager.shard(run_id)->sealed());
}

TEST(ProvenanceManagerTest, RunIdsAreUniquePerRun) {
  ProvenanceManager manager;
  std::string a = manager.BeginWorkflow("wf", 0.0);
  manager.EndWorkflow(a, 1.0, true);
  std::string b = manager.BeginWorkflow("wf", 2.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.shard_count(), 2u);
}

TEST(ProvenanceManagerTest, TaskAndFileEventsCarryDetail) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("wf", 0.0);
  TaskSpec spec = MakeSpec(7, "varscan");
  manager.RecordTaskStart(run, spec, 2, "node-002", 5.0);
  manager.RecordFileStageIn(run, 7, "/in/a.bam", 1024, 0.5, 5.5);
  manager.RecordTaskEnd(run, MakeResult(7, "varscan", 2, 5.0, 25.0),
                        "node-002");
  manager.RecordFileStageOut(run, 7, "/out/a.vcf", 2048, 0.25, 25.0);
  auto events = manager.Events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[1].command, "varscan --args");
  EXPECT_EQ(events[1].tool, "varscan");
  EXPECT_EQ(events[2].file_path, "/in/a.bam");
  EXPECT_EQ(events[2].size_bytes, 1024);
  EXPECT_DOUBLE_EQ(events[3].duration, 20.0);
  EXPECT_EQ(events[4].type, ProvenanceEventType::kFileStageOut);
}

// Satellite: a trace captured up to an ARBITRARY crash point is a valid
// executable workflow prefix. Record a 3-task chain, truncate after each
// event in turn, and round-trip the prefix through TraceSource with
// allow_incomplete: every prefix with at least one completed task must
// rebuild, replaying exactly the completed tasks.
TEST(ProvenanceManagerTest, CrashPrefixIsAnExecutableWorkflowPrefix) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("chain", 0.0);
  // t1 -> t2 -> t3, each consuming its predecessor's output.
  for (TaskId id = 1; id <= 3; ++id) {
    TaskSpec spec = MakeSpec(id, StrFormat("tool%lld",
                                           static_cast<long long>(id)));
    double start = 10.0 * static_cast<double>(id);
    manager.RecordTaskStart(run, spec, 0, "node-000", start);
    if (id > 1) {
      manager.RecordFileStageIn(
          run, id, StrFormat("/f%lld", static_cast<long long>(id - 1)), 100,
          0.1, start);
    }
    manager.RecordTaskEnd(
        run, MakeResult(id, spec.signature, 0, start, start + 5.0),
        "node-000");
    manager.RecordFileStageOut(run, id,
                               StrFormat("/f%lld", static_cast<long long>(id)),
                               100, 0.1, start + 5.0);
  }
  manager.EndWorkflow(run, 40.0, true);
  std::vector<ProvenanceEvent> full = manager.Events();

  // Walk every truncation point (a crash can interrupt anywhere) and
  // count completed tasks in the prefix by hand.
  for (size_t cut = 1; cut <= full.size(); ++cut) {
    std::vector<ProvenanceEvent> prefix(full.begin(), full.begin() + cut);
    size_t completed = 0;
    for (const ProvenanceEvent& ev : prefix) {
      if (ev.type == ProvenanceEventType::kTaskEnd && ev.success) ++completed;
    }
    auto source =
        TraceSource::FromEvents(prefix, run, /*allow_incomplete=*/true);
    if (completed == 0) {
      EXPECT_FALSE(source.ok()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(source.ok())
        << "cut=" << cut << ": " << source.status().ToString();
    EXPECT_EQ((*source)->task_count(), completed) << "cut=" << cut;
    // Round-trip through the JSON-lines serialisation too.
    auto reparsed = TraceSource::Parse(SerializeTrace(prefix), run,
                                       /*allow_incomplete=*/true);
    ASSERT_TRUE(reparsed.ok()) << "cut=" << cut;
    EXPECT_EQ((*reparsed)->task_count(), completed);
  }

  // Without allow_incomplete, a strict parse of a mid-task prefix fails
  // (the prefix ends right after task 2 started).
  std::vector<ProvenanceEvent> torn(full.begin(), full.begin() + 5);
  EXPECT_FALSE(TraceSource::FromEvents(torn, run).ok());
}

TEST(ProvenanceManagerTest, LatestRuntimeQueriesNewestSuccess) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("wf", 0.0);
  manager.RecordTaskEnd(run, MakeResult(1, "align", 0, 0, 30), "node-000");
  manager.RecordTaskEnd(run, MakeResult(2, "align", 0, 30, 80), "node-000");
  manager.RecordTaskEnd(run, MakeResult(3, "align", 1, 0, 10), "node-001");
  manager.RecordTaskEnd(run, MakeResult(4, "align", 0, 80, 200, false),
                        "node-000");  // failed: ignored
  auto latest = manager.LatestRuntime("align", 0);
  ASSERT_TRUE(latest.ok());
  EXPECT_DOUBLE_EQ(*latest, 50.0);
  EXPECT_DOUBLE_EQ(*manager.LatestRuntime("align", 1), 10.0);
  EXPECT_TRUE(manager.LatestRuntime("align", 9).status().IsNotFound());
  EXPECT_TRUE(manager.LatestRuntime("sort", 0).status().IsNotFound());
}

TEST(ProvenanceManagerTest, RuntimeObservationsInOrder) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("wf", 0.0);
  manager.RecordTaskEnd(run, MakeResult(1, "align", 0, 0, 30), "node-000");
  manager.RecordTaskEnd(run, MakeResult(2, "align", 1, 0, 20), "node-001");
  auto obs = manager.RuntimeObservations("align");
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].first, 0);
  EXPECT_DOUBLE_EQ(obs[0].second, 30.0);
  EXPECT_EQ(obs[1].first, 1);
}

TEST(TraceSerializationTest, RoundTripThroughJsonLines) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("wf", 0.0);
  TaskSpec spec = MakeSpec(1, "align");
  manager.RecordTaskStart(run, spec, 0, "node-000", 1.0);
  manager.RecordFileStageIn(run, 1, "/in", 100, 0.1, 1.1);
  manager.RecordTaskEnd(run, MakeResult(1, "align", 0, 1.0, 9.0), "node-000");
  manager.EndWorkflow(run, 10.0, true);
  std::string text = manager.View().ExportTrace();
  EXPECT_EQ(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')),
            manager.size());
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), manager.size());
  EXPECT_EQ((*parsed)[2].file_path, "/in");
}

TEST(TraceSerializationTest, BlankLinesIgnoredErrorsNameLine) {
  auto ok = ParseTrace("\n\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->empty());
  auto bad = ParseTrace(
      "{\"type\":\"workflow-start\",\"run_id\":\"r\",\"timestamp\":0}\n"
      "not json\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(TraceSerializationTest, UnknownTypeRejected) {
  auto bad = ParseTrace("{\"type\":\"task-vanished\"}\n");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace hiway
