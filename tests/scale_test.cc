// Scale-refactor coverage (docs/scaling.md): the incremental allocation
// pass must be schedule-identical to the pre-refactor full scan under
// randomized demand churn for every scheduler; the SimEngine's lazy
// cancellation must compact without dropping or reordering live events;
// FlatHashMap must keep references stable across growth and tombstone
// churn; and a 1k-workflow admission burst must drain cleanly.
//
// Run with `ctest -L scale`.

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/flat_hash.h"
#include "src/common/strings.h"
#include "src/sim/cluster.h"
#include "src/sim/engine.h"
#include "src/sim/flow.h"
#include "src/yarn/yarn.h"

namespace hiway {
namespace {

// ---- FlatHashMap ----------------------------------------------------------

TEST(FlatHashMapTest, BasicOpsMatchStdMap) {
  FlatHashMap<int64_t, int> map;
  std::map<int64_t, int> reference;
  std::mt19937 rng(7);
  for (int i = 0; i < 20000; ++i) {
    int64_t key = static_cast<int64_t>(rng() % 500);
    switch (rng() % 3) {
      case 0:
      case 1:
        map[key] = i;
        reference[key] = i;
        break;
      case 2:
        EXPECT_EQ(map.erase(key), reference.erase(key));
        break;
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto it = map.find(key);
    ASSERT_NE(it, map.end()) << key;
    EXPECT_EQ(it->second, value);
  }
  size_t seen = 0;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(reference.at(key), value);
    ++seen;
  }
  EXPECT_EQ(seen, reference.size());
}

TEST(FlatHashMapTest, ReferencesSurviveGrowthAndChurn) {
  FlatHashMap<int64_t, int> map;
  map[42] = 1;
  int& pinned = map[42];
  // Force many rehashes of the bucket array and slot churn in the
  // backing store; the deque-backed entry must not move.
  for (int64_t i = 0; i < 10000; ++i) map[1000 + i] = static_cast<int>(i);
  for (int64_t i = 0; i < 5000; ++i) map.erase(1000 + i);
  for (int64_t i = 0; i < 5000; ++i) map[20000 + i] = static_cast<int>(i);
  EXPECT_EQ(pinned, 1);
  pinned = 2;
  EXPECT_EQ(map.at(42), 2);
}

TEST(FlatHashMapTest, TombstoneHeavyChurnStaysCorrect) {
  FlatHashMap<int64_t, int64_t> map;
  // Insert/erase the same small working set far more times than the
  // table has buckets: probe paths must stay finite (the in-place
  // rehash reclaims tombstones) and lookups exact.
  for (int64_t round = 0; round < 2000; ++round) {
    for (int64_t k = 0; k < 16; ++k) map[k * 7919] = round;
    for (int64_t k = 0; k < 16; ++k) {
      ASSERT_TRUE(map.contains(k * 7919));
      map.erase(k * 7919);
    }
  }
  EXPECT_TRUE(map.empty());
}

// ---- SimEngine lazy cancellation -----------------------------------------

TEST(SimEngineScaleTest, CancellationCompactsWithoutDroppingLiveEvents) {
  SimEngine engine;
  std::vector<double> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 8000; ++i) {
    double at = static_cast<double>(i % 997);
    ids.push_back(engine.ScheduleAt(at, [&fired, &engine] {
      fired.push_back(engine.Now());
    }));
  }
  // Cancel three quarters; well past the compaction threshold.
  size_t live = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 4 != 0) {
      engine.Cancel(ids[i]);
    } else {
      ++live;
    }
  }
  EXPECT_GE(engine.compactions(), 1u);
  EXPECT_EQ(engine.pending_events(), live);
  engine.Run();
  EXPECT_EQ(fired.size(), live);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_GE(engine.peak_pending(), live);
}

TEST(SimEngineScaleTest, CancelAfterFireAndUnknownAreNoops) {
  SimEngine engine;
  int fired = 0;
  EventId id = engine.ScheduleAt(1.0, [&fired] { ++fired; });
  engine.Run();
  EXPECT_EQ(fired, 1);
  engine.Cancel(id);      // already fired
  engine.Cancel(999999);  // never existed
  engine.ScheduleAt(2.0, [&fired] { ++fired; });
  engine.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineScaleTest, TiesFireInScheduleOrderAcrossCompaction) {
  SimEngine engine;
  std::vector<int> order;
  std::vector<EventId> victims;
  for (int i = 0; i < 3000; ++i) {
    victims.push_back(engine.ScheduleAt(5.0, [] {}));
  }
  for (int i = 0; i < 8; ++i) {
    engine.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  for (EventId id : victims) engine.Cancel(id);
  engine.Run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// ---- Incremental pass == full scan under randomized churn -----------------

struct AllocationEvent {
  ApplicationId app;
  NodeId node;
  int vcores;
  double memory_mb;
  double at;
  bool operator==(const AllocationEvent& o) const {
    return app == o.app && node == o.node && vcores == o.vcores &&
           memory_mb == o.memory_mb && at == o.at;
  }
};

class StreamAm : public AmCallbacks {
 public:
  void OnContainerAllocated(const Container& container,
                            int64_t /*cookie*/) override {
    if (container.is_am) return;
    stream->push_back({container.app, container.node, container.vcores,
                       container.memory_mb, engine->Now()});
    double duration = (*durations)[*next_duration % durations->size()];
    ++*next_duration;
    ContainerId id = container.id;
    engine->ScheduleAfter(duration, [this, id] { rm->ReleaseContainer(id); });
  }
  void OnContainerLost(const Container& /*container*/,
                       ContainerLossReason /*reason*/) override {}

  SimEngine* engine = nullptr;
  ResourceManager* rm = nullptr;
  std::vector<AllocationEvent>* stream = nullptr;
  const std::vector<double>* durations = nullptr;
  size_t* next_duration = nullptr;
};

/// One scripted churn action, generated once and replayed identically
/// against both allocation modes.
struct ChurnOp {
  enum Kind { kRegister, kSubmit, kUnregister, kKillNode } kind;
  double at = 0.0;
  int app_index = 0;     // kRegister/kSubmit/kUnregister
  std::string queue;     // kRegister
  int vcores = 1;        // kSubmit
  double memory_mb = 0;  // kSubmit
  int priority = 0;      // kSubmit
  NodeId preferred = kInvalidNode;  // kSubmit
  NodeId node = 0;       // kKillNode
};

std::vector<ChurnOp> MakeChurnScript(uint32_t seed) {
  std::mt19937 rng(seed);
  auto uniform = [&rng](double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(rng() % 100000) / 100000.0);
  };
  std::vector<ChurnOp> ops;
  constexpr int kApps = 30;
  for (int a = 0; a < kApps; ++a) {
    ChurnOp reg;
    reg.kind = ChurnOp::kRegister;
    reg.at = uniform(0.0, 10.0);
    reg.app_index = a;
    reg.queue = StrFormat("q%u", rng() % 4);
    ops.push_back(reg);
    int requests = 5 + static_cast<int>(rng() % 11);
    for (int r = 0; r < requests; ++r) {
      ChurnOp sub;
      sub.kind = ChurnOp::kSubmit;
      sub.at = reg.at + uniform(0.1, 15.0);
      sub.app_index = a;
      sub.vcores = 1 + static_cast<int>(rng() % 2);
      sub.memory_mb = 512.0 * static_cast<double>(1 + rng() % 4);
      sub.priority = static_cast<int>(rng() % 3);
      if (rng() % 5 == 0) sub.preferred = static_cast<NodeId>(rng() % 20);
      ops.push_back(sub);
    }
  }
  for (int i = 0; i < 5; ++i) {
    ChurnOp un;
    un.kind = ChurnOp::kUnregister;
    un.at = uniform(15.0, 25.0);
    un.app_index = static_cast<int>(rng() % kApps);
    ops.push_back(un);
  }
  for (double at : {6.0, 12.0}) {
    ChurnOp kill;
    kill.kind = ChurnOp::kKillNode;
    kill.at = at;
    kill.node = static_cast<NodeId>(rng() % 20);
    ops.push_back(kill);
  }
  return ops;
}

struct ChurnOutcome {
  std::vector<AllocationEvent> stream;
  std::vector<std::pair<int, double>> free_capacity;  // per alive node
  int pending = 0;
  double instant_fairness = 0.0;
  double time_averaged_fairness = 0.0;
};

ChurnOutcome RunChurn(const std::string& scheduler, const std::string& mode,
                      const std::vector<ChurnOp>& ops,
                      const std::vector<double>& durations) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 4;
  node.memory_mb = 4096.0;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(20, node, 1000.0));
  YarnOptions options;
  options.scheduler = scheduler;
  options.allocation_mode = mode;
  ResourceManager rm(&cluster, options);
  struct QueueSpec {
    const char* name;
    double guaranteed, max, weight;
  };
  // max_share < 1 on two queues so the incremental pass must reproduce
  // the full scan's WithinMaxShare skips exactly.
  for (const QueueSpec& q : {QueueSpec{"q0", 0.4, 0.6, 2.0},
                             QueueSpec{"q1", 0.3, 1.0, 1.0},
                             QueueSpec{"q2", 0.2, 0.5, 1.0},
                             QueueSpec{"q3", 0.1, 1.0, 3.0}}) {
    RmQueueConfig config;
    config.name = q.name;
    config.guaranteed_share = q.guaranteed;
    config.max_share = q.max;
    config.weight = q.weight;
    rm.ConfigureQueue(config);
  }

  ChurnOutcome outcome;
  size_t next_duration = 0;
  std::vector<std::unique_ptr<StreamAm>> ams(31);
  std::vector<ApplicationId> app_ids(31, -1);
  for (auto& am : ams) {
    am = std::make_unique<StreamAm>();
    am->engine = &engine;
    am->rm = &rm;
    am->stream = &outcome.stream;
    am->durations = &durations;
    am->next_duration = &next_duration;
  }
  for (const ChurnOp& op : ops) {
    engine.ScheduleAt(op.at, [&, op] {
      switch (op.kind) {
        case ChurnOp::kRegister: {
          auto app = rm.RegisterApplication(
              StrFormat("app-%d", op.app_index), ams[op.app_index].get(), 0,
              0.0, kInvalidNode, op.queue);
          if (app.ok()) app_ids[op.app_index] = *app;
          break;
        }
        case ChurnOp::kSubmit: {
          if (app_ids[op.app_index] < 0) break;
          ContainerRequest request;
          request.vcores = op.vcores;
          request.memory_mb = op.memory_mb;
          request.priority = op.priority;
          request.preferred_node = op.preferred;
          rm.SubmitRequest(app_ids[op.app_index], request);
          break;
        }
        case ChurnOp::kUnregister:
          if (app_ids[op.app_index] >= 0) {
            rm.UnregisterApplication(app_ids[op.app_index]);
            app_ids[op.app_index] = -1;
          }
          break;
        case ChurnOp::kKillNode:
          rm.KillNode(op.node);
          break;
      }
    });
  }
  engine.Run();

  for (NodeId n = 0; n < 20; ++n) {
    if (!rm.IsNodeAlive(n)) continue;
    outcome.free_capacity.push_back({rm.free_vcores(n), rm.free_memory_mb(n)});
  }
  outcome.pending = rm.pending_requests();
  outcome.instant_fairness = rm.InstantFairness();
  outcome.time_averaged_fairness = rm.TimeAveragedFairness();
  return outcome;
}

class ScaleEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScaleEquivalenceTest, IncrementalPassIsScheduleIdenticalToFullScan) {
  for (uint32_t seed : {1u, 17u, 4242u}) {
    std::mt19937 rng(seed ^ 0x5bd1e995u);
    std::vector<double> durations;
    for (int i = 0; i < 2048; ++i) {
      durations.push_back(0.5 + static_cast<double>(rng() % 4500) / 1000.0);
    }
    std::vector<ChurnOp> ops = MakeChurnScript(seed);
    ChurnOutcome incremental =
        RunChurn(GetParam(), "incremental", ops, durations);
    ChurnOutcome full_scan = RunChurn(GetParam(), "full-scan", ops, durations);

    ASSERT_EQ(incremental.stream.size(), full_scan.stream.size())
        << GetParam() << " seed " << seed;
    for (size_t i = 0; i < incremental.stream.size(); ++i) {
      ASSERT_TRUE(incremental.stream[i] == full_scan.stream[i])
          << GetParam() << " seed " << seed << " allocation " << i;
    }
    EXPECT_EQ(incremental.free_capacity, full_scan.free_capacity);
    EXPECT_EQ(incremental.pending, full_scan.pending);
    // Same state reached through the same FairnessTouch choke points:
    // the incremental aggregates must agree bit-for-bit across modes.
    EXPECT_EQ(incremental.instant_fairness, full_scan.instant_fairness);
    EXPECT_EQ(incremental.time_averaged_fairness,
              full_scan.time_averaged_fairness);
    EXPECT_GT(incremental.stream.size(), 100u);  // the script did real work
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, ScaleEquivalenceTest,
                         ::testing::Values("fifo", "capacity", "fair"));

// ---- 1k-workflow admission smoke -----------------------------------------

class SmokeAm : public AmCallbacks {
 public:
  void OnContainerAllocated(const Container& container,
                            int64_t /*cookie*/) override {
    if (container.is_am) return;
    if (first_alloc_at < 0.0) first_alloc_at = engine->Now();
    ContainerId id = container.id;
    engine->ScheduleAfter(1.0, [this, id] {
      rm->ReleaseContainer(id);
      if (--remaining == 0) rm->UnregisterApplication(app);
    });
  }
  void OnContainerLost(const Container& /*container*/,
                       ContainerLossReason /*reason*/) override {}

  SimEngine* engine = nullptr;
  ResourceManager* rm = nullptr;
  ApplicationId app = -1;
  double first_alloc_at = -1.0;
  int remaining = 4;
};

TEST(ScaleSmokeTest, ThousandConcurrentWorkflowsDrainCleanly) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 4;
  node.memory_mb = 8192.0;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(200, node, 1000.0));
  YarnOptions options;
  options.scheduler = "fair";
  ResourceManager rm(&cluster, options);

  constexpr int kWorkflows = 1000;
  engine.Reserve(kWorkflows * 4 + 64);
  std::vector<std::unique_ptr<SmokeAm>> ams;
  for (int w = 0; w < kWorkflows; ++w) {
    ams.push_back(std::make_unique<SmokeAm>());
    SmokeAm* am = ams.back().get();
    am->engine = &engine;
    am->rm = &rm;
    engine.ScheduleAt(w * 0.002, [am, &rm, w] {
      auto app = rm.RegisterApplication(StrFormat("smoke-%d", w), am, 0, 0.0);
      ASSERT_TRUE(app.ok());
      am->app = *app;
      ContainerRequest request;
      request.vcores = 1;
      request.memory_mb = 512.0;
      for (int t = 0; t < 4; ++t) rm.SubmitRequest(am->app, request);
    });
  }
  engine.Run();

  for (const auto& am : ams) {
    ASSERT_GE(am->first_alloc_at, 0.0);
    EXPECT_EQ(am->remaining, 0);
  }
  EXPECT_EQ(rm.running_containers(), 0);
  EXPECT_EQ(rm.pending_requests(), 0);
  EXPECT_EQ(rm.counters().allocations, kWorkflows * 4 + kWorkflows);
  EXPECT_GT(rm.allocation_passes(), 0u);
  double jain = rm.InstantFairness();
  EXPECT_GE(jain, 0.0);
  EXPECT_LE(jain, 1.0);
}

}  // namespace
}  // namespace hiway
