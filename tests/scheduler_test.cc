// Tests for the Workflow Scheduler policies: FCFS ordering, data-aware
// locality maximisation, static round-robin placement, HEFT ranking and
// adaptive placement, and the factory.

#include "src/core/scheduler.h"

#include <gtest/gtest.h>

#include "src/common/strings.h"

namespace hiway {
namespace {

std::vector<NodeId> Nodes(int n) {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < n; ++i) out.push_back(i);
  return out;
}

TaskSpec Task(TaskId id, std::string signature,
              std::vector<std::string> inputs = {},
              std::vector<std::string> outputs = {}) {
  TaskSpec t;
  t.id = id;
  t.signature = std::move(signature);
  t.tool = t.signature;
  t.input_files = std::move(inputs);
  int i = 0;
  for (std::string& out : outputs) {
    t.outputs.push_back(OutputSpec{StrFormat("o%d", i++), std::move(out),
                                   {}, false});
  }
  t.vcores = 1;
  t.memory_mb = 512;
  return t;
}

// ------------------------------------------------------------------ FCFS --

TEST(FcfsSchedulerTest, SelectsInQueueOrderRegardlessOfNode) {
  FcfsScheduler scheduler;
  scheduler.EnqueueReady(Task(1, "a"));
  scheduler.EnqueueReady(Task(2, "b"));
  scheduler.EnqueueReady(Task(3, "c"));
  EXPECT_EQ(scheduler.QueuedCount(), 3u);
  EXPECT_EQ(*scheduler.SelectTask(5), 1);
  EXPECT_EQ(*scheduler.SelectTask(0), 2);
  EXPECT_EQ(*scheduler.SelectTask(2), 3);
  EXPECT_FALSE(scheduler.SelectTask(0).has_value());
}

TEST(FcfsSchedulerTest, RequestHasNoPlacementPreference) {
  FcfsScheduler scheduler;
  ContainerRequest r = scheduler.RequestFor(Task(1, "a"));
  EXPECT_EQ(r.preferred_node, kInvalidNode);
  EXPECT_FALSE(r.strict_locality);
}

TEST(FcfsSchedulerTest, RemoveTaskDropsIt) {
  FcfsScheduler scheduler;
  scheduler.EnqueueReady(Task(1, "a"));
  scheduler.EnqueueReady(Task(2, "b"));
  scheduler.RemoveTask(1);
  EXPECT_EQ(scheduler.QueuedCount(), 1u);
  EXPECT_EQ(*scheduler.SelectTask(0), 2);
}

// ------------------------------------------------------------ data-aware --

struct DataAwareRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Dfs> dfs;

  explicit DataAwareRig(int nodes) {
    cluster = std::make_unique<Cluster>(
        &engine, &net, ClusterSpec::Uniform(nodes, NodeSpec{}, 1000.0));
    DfsOptions options;
    options.replication = 1;  // make locality unambiguous
    dfs = std::make_unique<Dfs>(cluster.get(), options);
  }
};

TEST(DataAwareSchedulerTest, PicksTaskWithMostLocalData) {
  DataAwareRig rig(3);
  ASSERT_TRUE(rig.dfs->IngestFile("/on0", 100 << 20, NodeId{0}).ok());
  ASSERT_TRUE(rig.dfs->IngestFile("/on2", 100 << 20, NodeId{2}).ok());
  DataAwareScheduler scheduler(rig.dfs.get());
  scheduler.EnqueueReady(Task(1, "t", {"/on0"}));
  scheduler.EnqueueReady(Task(2, "t", {"/on2"}));
  // A container on node 2 should run task 2 even though task 1 is older.
  EXPECT_EQ(*scheduler.SelectTask(2), 2);
  EXPECT_EQ(*scheduler.SelectTask(0), 1);
}

TEST(DataAwareSchedulerTest, FractionNotAbsoluteBytesDecides) {
  DataAwareRig rig(2);
  // Task 1: 10 MB input fully on node 1 (fraction 1.0).
  ASSERT_TRUE(rig.dfs->IngestFile("/small", 10 << 20, NodeId{1}).ok());
  // Task 2: two inputs, 100 MB on node 0, 100 MB on node 1 (fraction 0.5).
  ASSERT_TRUE(rig.dfs->IngestFile("/big0", 100 << 20, NodeId{0}).ok());
  ASSERT_TRUE(rig.dfs->IngestFile("/big1", 100 << 20, NodeId{1}).ok());
  DataAwareScheduler scheduler(rig.dfs.get());
  scheduler.EnqueueReady(Task(2, "t", {"/big0", "/big1"}));
  scheduler.EnqueueReady(Task(1, "t", {"/small"}));
  EXPECT_EQ(*scheduler.SelectTask(1), 1);  // 1.0 beats 0.5 despite fewer MB
}

TEST(DataAwareSchedulerTest, TiesResolveFifo) {
  DataAwareRig rig(2);
  ASSERT_TRUE(rig.dfs->IngestFile("/a", 10 << 20, NodeId{0}).ok());
  ASSERT_TRUE(rig.dfs->IngestFile("/b", 10 << 20, NodeId{0}).ok());
  DataAwareScheduler scheduler(rig.dfs.get());
  scheduler.EnqueueReady(Task(1, "t", {"/a"}));
  scheduler.EnqueueReady(Task(2, "t", {"/b"}));
  EXPECT_EQ(*scheduler.SelectTask(0), 1);
  EXPECT_EQ(*scheduler.SelectTask(0), 2);
}

TEST(DataAwareSchedulerTest, RequestPrefersNodeWithMostData) {
  DataAwareRig rig(3);
  ASSERT_TRUE(rig.dfs->IngestFile("/x", 50 << 20, NodeId{1}).ok());
  DataAwareScheduler scheduler(rig.dfs.get());
  ContainerRequest r = scheduler.RequestFor(Task(1, "t", {"/x"}));
  EXPECT_EQ(r.preferred_node, 1);
  EXPECT_FALSE(r.strict_locality);  // relaxed: any node may still serve
}

TEST(DataAwareSchedulerTest, TasksWithoutInputsStillSchedulable) {
  DataAwareRig rig(2);
  DataAwareScheduler scheduler(rig.dfs.get());
  scheduler.EnqueueReady(Task(1, "gen"));
  EXPECT_EQ(*scheduler.SelectTask(1), 1);
}

// ------------------------------------------------------------ round-robin --

TEST(RoundRobinSchedulerTest, DealsTasksInTurn) {
  RoundRobinScheduler scheduler;
  std::vector<TaskSpec> tasks;
  for (TaskId id = 1; id <= 6; ++id) tasks.push_back(Task(id, "t"));
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, {}, Nodes(3)).ok());
  // Topological order == insertion order here; assignments cycle 0,1,2.
  std::map<NodeId, int> per_node;
  for (TaskId id = 1; id <= 6; ++id) {
    auto node = scheduler.AssignedNode(id);
    ASSERT_TRUE(node.ok());
    ++per_node[*node];
  }
  EXPECT_EQ(per_node.size(), 3u);
  for (const auto& [node, count] : per_node) EXPECT_EQ(count, 2);
}

TEST(RoundRobinSchedulerTest, RespectsTopologicalOrder) {
  RoundRobinScheduler scheduler;
  std::vector<TaskSpec> tasks = {Task(1, "child"), Task(2, "parent")};
  TaskDependencies deps;
  deps[1] = {2};  // 1 depends on 2
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, deps, Nodes(2)).ok());
  // Parent must be placed first in round-robin order -> node 0.
  EXPECT_EQ(*scheduler.AssignedNode(2), 0);
  EXPECT_EQ(*scheduler.AssignedNode(1), 1);
}

TEST(RoundRobinSchedulerTest, SelectOnlyOnAssignedNode) {
  RoundRobinScheduler scheduler;
  std::vector<TaskSpec> tasks = {Task(1, "t"), Task(2, "t")};
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, {}, Nodes(2)).ok());
  scheduler.EnqueueReady(tasks[0]);  // assigned to node 0
  EXPECT_FALSE(scheduler.SelectTask(1).has_value());
  EXPECT_EQ(*scheduler.SelectTask(0), 1);
}

TEST(RoundRobinSchedulerTest, StrictRequests) {
  RoundRobinScheduler scheduler;
  std::vector<TaskSpec> tasks = {Task(1, "t")};
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, {}, Nodes(4)).ok());
  ContainerRequest r = scheduler.RequestFor(tasks[0]);
  EXPECT_TRUE(r.strict_locality);
  EXPECT_EQ(r.preferred_node, *scheduler.AssignedNode(1));
}

TEST(RoundRobinSchedulerTest, CycleDetected) {
  RoundRobinScheduler scheduler;
  std::vector<TaskSpec> tasks = {Task(1, "a"), Task(2, "b")};
  TaskDependencies deps;
  deps[1] = {2};
  deps[2] = {1};
  EXPECT_TRUE(scheduler.BuildStaticSchedule(tasks, deps, Nodes(2))
                  .IsInvalidArgument());
}

// ------------------------------------------------------------------ HEFT --

TEST(HeftSchedulerTest, ColdEstimatesPlaceEverywhere) {
  RuntimeEstimator estimator;  // empty: all estimates 0
  HeftScheduler scheduler(&estimator);
  std::vector<TaskSpec> tasks;
  for (TaskId id = 1; id <= 4; ++id) tasks.push_back(Task(id, "t"));
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, {}, Nodes(4)).ok());
  // With zero estimates EFT is 0 everywhere; the tie-break keeps node 0 —
  // the paper's "subpar performance in the absence of provenance".
  for (TaskId id = 1; id <= 4; ++id) {
    EXPECT_TRUE(scheduler.AssignedNode(id).ok());
  }
}

TEST(HeftSchedulerTest, AvoidsSlowNodesOnceObserved) {
  RuntimeEstimator estimator;
  // Node 0 is 10x slower for signature "t".
  estimator.Observe("t", 0, 100.0);
  estimator.Observe("t", 1, 10.0);
  estimator.Observe("t", 2, 10.0);
  HeftScheduler scheduler(&estimator);
  std::vector<TaskSpec> tasks;
  for (TaskId id = 1; id <= 4; ++id) tasks.push_back(Task(id, "t"));
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, {}, Nodes(3)).ok());
  int on_slow = 0;
  for (TaskId id = 1; id <= 4; ++id) {
    if (*scheduler.AssignedNode(id) == 0) ++on_slow;
  }
  // 4 tasks, nodes 1/2 take two each (EFT 10 then 20) before node 0's 100
  // ever wins.
  EXPECT_EQ(on_slow, 0);
}

TEST(HeftSchedulerTest, UpwardRankOrdersCriticalPath) {
  RuntimeEstimator estimator;
  for (NodeId n = 0; n < 2; ++n) {
    estimator.Observe("long", n, 100.0);
    estimator.Observe("short", n, 1.0);
    estimator.Observe("sink", n, 1.0);
  }
  HeftScheduler scheduler(&estimator);
  // long -> sink, short -> sink.
  std::vector<TaskSpec> tasks = {Task(1, "long", {}, {"/l"}),
                                 Task(2, "short", {}, {"/s"}),
                                 Task(3, "sink", {"/l", "/s"})};
  TaskDependencies deps;
  deps[3] = {1, 2};
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, deps, Nodes(2)).ok());
  EXPECT_GT(*scheduler.UpwardRank(1), *scheduler.UpwardRank(2));
  EXPECT_GT(*scheduler.UpwardRank(1), *scheduler.UpwardRank(3));
}

TEST(HeftSchedulerTest, PerNodeQueueOrderedByRank) {
  RuntimeEstimator estimator;
  estimator.Observe("a", 0, 50.0);
  estimator.Observe("b", 0, 10.0);
  HeftScheduler scheduler(&estimator);
  std::vector<TaskSpec> tasks = {Task(1, "b"), Task(2, "a")};
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, {}, Nodes(1)).ok());
  scheduler.EnqueueReady(tasks[0]);
  scheduler.EnqueueReady(tasks[1]);
  // Higher-rank task ("a", longer) launches first despite later enqueue.
  EXPECT_EQ(*scheduler.SelectTask(0), 2);
  EXPECT_EQ(*scheduler.SelectTask(0), 1);
}

TEST(HeftSchedulerTest, IsStaticAndStrict) {
  RuntimeEstimator estimator;
  HeftScheduler scheduler(&estimator);
  EXPECT_TRUE(scheduler.IsStatic());
  std::vector<TaskSpec> tasks = {Task(1, "t")};
  ASSERT_TRUE(scheduler.BuildStaticSchedule(tasks, {}, Nodes(2)).ok());
  EXPECT_TRUE(scheduler.RequestFor(tasks[0]).strict_locality);
}

// --------------------------------------------------------------- factory --

TEST(SchedulerFactoryTest, ConstructsAllPolicies) {
  SimEngine engine;
  FlowNetwork net(&engine);
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(2, NodeSpec{}, 100.0));
  Dfs dfs(&cluster, DfsOptions{});
  RuntimeEstimator estimator;
  for (const char* policy : {"fcfs", "data-aware", "round-robin", "heft"}) {
    auto s = MakeScheduler(policy, &dfs, &estimator);
    ASSERT_TRUE(s.ok()) << policy;
    EXPECT_EQ((*s)->name(), policy);
  }
  EXPECT_TRUE(MakeScheduler("nope", &dfs, &estimator)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MakeScheduler("data-aware", nullptr, &estimator)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      MakeScheduler("heft", &dfs, nullptr).status().IsInvalidArgument());
}

// ------------------------------------------------------------ online MCT --

TEST(OnlineMctSchedulerTest, IsDynamicAndFifoWhenCold) {
  RuntimeEstimator estimator;
  OnlineMctScheduler scheduler(&estimator, 4);
  EXPECT_FALSE(scheduler.IsStatic());  // works with iterative workflows
  scheduler.EnqueueReady(Task(1, "a"));
  scheduler.EnqueueReady(Task(2, "b"));
  EXPECT_EQ(*scheduler.SelectTask(0), 1);
  EXPECT_EQ(*scheduler.SelectTask(3), 2);
}

TEST(OnlineMctSchedulerTest, PrefersTaskForWhichNodeIsBest) {
  RuntimeEstimator estimator;
  // Node 0 is great for "gpuish" (10 vs mean 55), mediocre for "other".
  estimator.Observe("gpuish", 0, 10.0);
  estimator.Observe("gpuish", 1, 100.0);
  estimator.Observe("other", 0, 50.0);
  estimator.Observe("other", 1, 50.0);
  OnlineMctScheduler scheduler(&estimator, 2);
  scheduler.EnqueueReady(Task(1, "other"));
  scheduler.EnqueueReady(Task(2, "gpuish"));
  EXPECT_EQ(*scheduler.SelectTask(0), 2);  // node 0's comparative edge
  EXPECT_EQ(*scheduler.SelectTask(0), 1);
}

TEST(OnlineMctSchedulerTest, UnobservedPairsExploreFirst) {
  RuntimeEstimator estimator;
  estimator.Observe("a", 0, 10.0);
  estimator.Observe("a", 1, 10.0);
  OnlineMctScheduler scheduler(&estimator, 2);
  scheduler.EnqueueReady(Task(1, "a"));
  scheduler.EnqueueReady(Task(2, "never-seen"));
  // The unobserved signature scores 0 (optimistic) and is tried first.
  EXPECT_EQ(*scheduler.SelectTask(1), 2);
}

TEST(OnlineMctSchedulerTest, RequestPrefersBestObservedNode) {
  RuntimeEstimator estimator;
  estimator.Observe("t", 0, 90.0);
  estimator.Observe("t", 2, 10.0);
  OnlineMctScheduler scheduler(&estimator, 3);
  ContainerRequest r = scheduler.RequestFor(Task(1, "t"));
  EXPECT_EQ(r.preferred_node, 2);
  EXPECT_FALSE(r.strict_locality);
}

// -------------------------------------------------------------- estimator --

TEST(RuntimeEstimatorTest, LatestObservedStrategy) {
  RuntimeEstimator estimator(EstimationStrategy::kLatestObserved);
  EXPECT_DOUBLE_EQ(estimator.Estimate("t", 0), 0.0);  // unseen -> 0
  estimator.Observe("t", 0, 10.0);
  estimator.Observe("t", 0, 30.0);
  EXPECT_DOUBLE_EQ(estimator.Estimate("t", 0), 30.0);  // latest wins
  EXPECT_TRUE(estimator.HasObservation("t", 0));
  EXPECT_FALSE(estimator.HasObservation("t", 1));
}

TEST(RuntimeEstimatorTest, RunningMeanStrategy) {
  RuntimeEstimator estimator(EstimationStrategy::kRunningMean);
  estimator.Observe("t", 0, 10.0);
  estimator.Observe("t", 0, 30.0);
  EXPECT_DOUBLE_EQ(estimator.Estimate("t", 0), 20.0);
}

TEST(RuntimeEstimatorTest, SignatureFallbackStrategy) {
  RuntimeEstimator estimator(
      EstimationStrategy::kLatestWithSignatureFallback);
  estimator.Observe("t", 0, 12.0);
  estimator.Observe("t", 1, 24.0);
  EXPECT_DOUBLE_EQ(estimator.Estimate("t", 7), 18.0);  // mean over others
  EXPECT_DOUBLE_EQ(estimator.Estimate("u", 7), 0.0);   // unknown signature
}

TEST(RuntimeEstimatorTest, MeanEstimateAcrossNodes) {
  RuntimeEstimator estimator;
  estimator.Observe("t", 0, 10.0);
  estimator.Observe("t", 1, 20.0);
  // Node 2 unseen -> 0; mean over 3 nodes = 10.
  EXPECT_DOUBLE_EQ(estimator.MeanEstimate("t", 3), 10.0);
}

TEST(RuntimeEstimatorTest, LoadFromViewIndexesTaskEnds) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("wf", 0.0);
  TaskResult result;
  result.id = 1;
  result.signature = "align";
  result.node = 3;
  result.started_at = 0.0;
  result.finished_at = 42.0;
  result.status = Status::OK();
  manager.RecordTaskEnd(run, result, "node-003");
  RuntimeEstimator estimator;
  estimator.LoadFromView(manager.View());
  EXPECT_DOUBLE_EQ(estimator.Estimate("align", 3), 42.0);
  estimator.Clear();
  EXPECT_DOUBLE_EQ(estimator.Estimate("align", 3), 0.0);
}

TEST(RuntimeEstimatorTest, FailedTasksAreNotObservations) {
  ProvenanceManager manager;
  std::string run = manager.BeginWorkflow("wf", 0.0);
  TaskResult result;
  result.id = 1;
  result.signature = "align";
  result.node = 0;
  result.finished_at = 99.0;
  result.status = Status::RuntimeError("crashed");
  manager.RecordTaskEnd(run, result, "node-000");
  RuntimeEstimator estimator;
  estimator.LoadFromView(manager.View());
  EXPECT_FALSE(estimator.HasObservation("align", 0));
}

}  // namespace
}  // namespace hiway
