// Tests for the multi-tenant WorkflowService gateway: admission control
// (backlog bounds, concurrency caps, deadlines), queue drain order,
// deterministic replay, and parity with the single-workflow client path.

#include "src/service/workflow_service.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/sim/fault_injector.h"

namespace hiway {
namespace {

/// Snapshot of the DFS namespace: path -> size. Failover must reproduce
/// the clean run's outputs exactly.
std::map<std::string, int64_t> DfsSnapshot(Dfs* dfs) {
  std::map<std::string, int64_t> files;
  for (const std::string& path : dfs->ListFiles()) {
    auto info = dfs->Stat(path);
    if (info.ok()) files[path] = info->size_bytes;
  }
  return files;
}

Result<std::unique_ptr<Deployment>> SmallDeployment(
    int workers = 4, const ChefAttributes& extra = {}) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", workers));
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("snv/chunks", "4");
  karamel.SetAttribute("snv/chunk_mb", "32");
  karamel.SetAttribute("montage/images", "6");
  karamel.SetAttribute("kmeans/points_mb", "8");
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  return karamel.Converge();
}

TEST(ServiceTest, RunsManyWorkflowsConcurrently) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  options.rm_scheduler = "fair";
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  for (const char* name : {"snv-calling", "montage", "kmeans"}) {
    auto id = (*service)->SubmitStaged(name);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  EXPECT_EQ((*service)->running_ams(), 3);  // all admitted immediately
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  for (const SubmissionRecord& rec : (*service)->Records()) {
    EXPECT_EQ(rec.state, SubmissionState::kSucceeded) << rec.name;
    EXPECT_GT(rec.report.tasks_completed, 0) << rec.name;
  }
  EXPECT_TRUE((*service)->Idle());
}

TEST(ServiceTest, ConcurrencyCapQueuesAndDrainsInSubmissionOrder) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  ServiceQueueOptions q;
  q.rm.name = "default";
  q.max_concurrent_ams = 1;
  options.queues = {q};
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  std::vector<SubmissionId> ids;
  for (const char* name : {"montage", "kmeans", "snv-calling"}) {
    auto id = (*service)->SubmitStaged(name);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_EQ((*service)->running_ams("default"), 1);
  EXPECT_EQ((*service)->backlog("default"), 2);
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  // One at a time, in submission order: starts are serialised.
  const SubmissionRecord* first = (*service)->record(ids[0]);
  const SubmissionRecord* second = (*service)->record(ids[1]);
  const SubmissionRecord* third = (*service)->record(ids[2]);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->state, SubmissionState::kSucceeded);
  EXPECT_EQ(second->state, SubmissionState::kSucceeded);
  EXPECT_EQ(third->state, SubmissionState::kSucceeded);
  EXPECT_DOUBLE_EQ(first->started_at, first->submitted_at);
  EXPECT_GE(second->started_at, first->finished_at);
  EXPECT_GE(third->started_at, second->finished_at);
}

TEST(ServiceTest, FullBacklogRejectsWithBackpressure) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  ServiceQueueOptions q;
  q.rm.name = "default";
  q.max_concurrent_ams = 1;
  q.max_backlog = 1;
  options.queues = {q};
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->SubmitStaged("montage").ok());  // runs
  ASSERT_TRUE((*service)->SubmitStaged("kmeans").ok());   // backlogged
  auto rejected = (*service)->SubmitStaged("snv-calling");
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  const ServiceQueueCounters* counters =
      (*service)->queue_counters("default");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->rejected, 1);
  EXPECT_EQ(counters->submitted, 2);
  ASSERT_TRUE((*service)->RunToCompletion().ok());
}

TEST(ServiceTest, QueuedSubmissionExpiresAtItsDeadline) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  ServiceQueueOptions q;
  q.rm.name = "default";
  q.max_concurrent_ams = 1;
  options.queues = {q};
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->SubmitStaged("snv-calling").ok());
  SubmissionOptions with_deadline;
  with_deadline.deadline_s = 10.0;  // far shorter than the running workflow
  auto doomed = (*service)->SubmitStaged("montage", with_deadline);
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*doomed);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, SubmissionState::kExpired);
  EXPECT_TRUE(rec->report.status.IsFailedPrecondition());
  const ServiceQueueCounters* counters =
      (*service)->queue_counters("default");
  EXPECT_EQ(counters->expired, 1);
}

TEST(ServiceTest, LateFinisherIsFlaggedNotKilled) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  SubmissionOptions with_deadline;
  with_deadline.deadline_s = 1.0;  // starts instantly, finishes way later
  auto id = (*service)->SubmitStaged("montage", with_deadline);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, SubmissionState::kSucceeded);
  EXPECT_TRUE(rec->deadline_missed);
}

TEST(ServiceTest, MultiQueueCapsAreIndependent) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  ServiceQueueOptions fast;
  fast.rm.name = "fast";
  fast.max_concurrent_ams = 2;
  ServiceQueueOptions slow;
  slow.rm.name = "slow";
  slow.max_concurrent_ams = 1;
  options.queues = {fast, slow};
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  SubmissionOptions to_fast;
  to_fast.queue = "fast";
  SubmissionOptions to_slow;
  to_slow.queue = "slow";
  ASSERT_TRUE((*service)->SubmitStaged("montage", to_fast).ok());
  ASSERT_TRUE((*service)->SubmitStaged("kmeans", to_fast).ok());
  ASSERT_TRUE((*service)->SubmitStaged("montage", to_slow).ok());
  ASSERT_TRUE((*service)->SubmitStaged("kmeans", to_slow).ok());
  EXPECT_EQ((*service)->running_ams("fast"), 2);
  EXPECT_EQ((*service)->running_ams("slow"), 1);
  EXPECT_EQ((*service)->backlog("slow"), 1);
  auto unknown = (*service)->SubmitStaged("montage", SubmissionOptions{});
  EXPECT_TRUE(unknown.status().IsInvalidArgument());  // no "default" queue
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  for (const SubmissionRecord& rec : (*service)->Records()) {
    EXPECT_EQ(rec.state, SubmissionState::kSucceeded) << rec.name;
  }
}

TEST(ServiceTest, ReplayIsDeterministicAcrossFreshDeployments) {
  auto run = [](const std::string& scheduler) {
    std::vector<std::pair<double, int>> outcome;
    auto d = SmallDeployment();
    EXPECT_TRUE(d.ok());
    WorkflowServiceOptions options;
    options.rm_scheduler = scheduler;
    auto service =
        WorkflowService::Create(d->get(), options);
    EXPECT_TRUE(service.ok());
    for (const char* name : {"snv-calling", "montage", "kmeans"}) {
      EXPECT_TRUE((*service)->SubmitStaged(name).ok());
    }
    EXPECT_TRUE((*service)->RunToCompletion().ok());
    for (const SubmissionRecord& rec : (*service)->Records()) {
      outcome.emplace_back(rec.finished_at, rec.report.tasks_completed);
    }
    return outcome;
  };
  for (const char* scheduler : {"fifo", "capacity", "fair"}) {
    auto first = run(scheduler);
    auto second = run(scheduler);
    EXPECT_EQ(first, second) << scheduler;
  }
}

// A single submission through the service behaves exactly like the
// single-workflow client path (same seed derivation aside): same task
// count, successful outcome, and the FIFO scheduler leaves the RM in
// seed-equivalent shape.
TEST(ServiceTest, SingleSubmissionMatchesClientRun) {
  auto d_client = SmallDeployment();
  ASSERT_TRUE(d_client.ok());
  HiWayClient client(d_client->get());
  HiWayOptions hiway;
  hiway.seed = 1234;
  auto direct = client.Run("montage", "data-aware", hiway);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(direct->status.ok());

  auto d_service = SmallDeployment();
  ASSERT_TRUE(d_service.ok());
  auto service =
      WorkflowService::Create(d_service->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("montage");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, SubmissionState::kSucceeded);
  EXPECT_EQ(rec->report.tasks_completed, direct->tasks_completed);
  EXPECT_EQ((*service)->deployment()->rm->scheduler_name(), "fifo");
}

// -- AM failover ----------------------------------------------------------

// Satellite: kill the node hosting a submission's AM mid-run. The
// service must launch a replacement attempt that memoises completed
// tasks from the provenance trace, produce byte-identical outputs, and
// re-execute only the tasks that were not yet done.
TEST(ServiceFailoverTest, AmNodeKillRecoversWithMemoisation) {
  // Clean reference run: outputs + task count without any failure.
  auto d_clean = SmallDeployment(6);
  ASSERT_TRUE(d_clean.ok());
  auto clean = WorkflowService::Create(d_clean->get(),
                                       WorkflowServiceOptions{});
  ASSERT_TRUE(clean.ok());
  auto clean_id = (*clean)->SubmitStaged("snv-calling");
  ASSERT_TRUE(clean_id.ok());
  ASSERT_TRUE((*clean)->RunToCompletion().ok());
  const SubmissionRecord* clean_rec = (*clean)->record(*clean_id);
  ASSERT_EQ(clean_rec->state, SubmissionState::kSucceeded);
  auto clean_files = DfsSnapshot((*d_clean)->dfs.get());

  // Faulted run: the AM node dies mid-workflow.
  auto d = SmallDeployment(6);
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(id.ok());

  // Strike past the midpoint of the (measured) clean makespan, so the
  // dead attempt provably completed work worth memoising.
  double strike = 0.6 * clean_rec->finished_at;
  FaultInjector injector(&(*d)->engine);
  (*service)->InstallFaultHandlers(&injector);
  ASSERT_TRUE(injector.ArmSpec(StrFormat("kill-am-node:at=%.3f:sub=%lld",
                                         strike,
                                         static_cast<long long>(*id)))
                  .ok());

  ASSERT_TRUE((*service)->RunToCompletion().ok());
  EXPECT_EQ(injector.counters().node_kills, 1);

  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, SubmissionState::kSucceeded);
  EXPECT_EQ(rec->am_attempts, 2);
  EXPECT_EQ(rec->am_failures, 1);
  ASSERT_EQ(rec->recovery_latency_s.size(), 1u);
  EXPECT_GT(rec->recovery_latency_s[0], 0.0);
  EXPECT_EQ(rec->report.am_attempt, 2);

  // Same logical outcome as the clean run...
  EXPECT_EQ(rec->report.tasks_completed, clean_rec->report.tasks_completed);
  // ...with byte-identical outputs (every clean-run file exists with the
  // same size; the faulted namespace is a superset only through lost-node
  // replica bookkeeping, never through different task outputs).
  auto files = DfsSnapshot((*d)->dfs.get());
  for (const auto& [path, size] : clean_files) {
    auto it = files.find(path);
    ASSERT_NE(it, files.end()) << path;
    EXPECT_EQ(it->second, size) << path;
  }

  // The failure happened mid-run, so the dead attempt had completed some
  // tasks — and the replacement memoised rather than re-ran them.
  EXPECT_GT(rec->completed_at_last_failure, 0);
  EXPECT_GT(rec->report.tasks_memoised, 0);
  // Wasted work: already-completed tasks that re-executed anyway.
  int wasted = rec->completed_at_last_failure - rec->report.tasks_memoised;
  EXPECT_GE(wasted, 0);
  EXPECT_LT(wasted, rec->completed_at_last_failure)
      << "recovery re-executed everything; memoisation is not working";
}

// Satellite (sharded provenance): with two submissions of the SAME
// workflow running concurrently — identical task signatures, identical
// output paths — a killed AM must rebuild its memoised prefix from its
// own prior-attempt shards only. If the recovery trace leaked the twin's
// shard, the replacement would memoise tasks its own attempts never
// completed; scoping caps memoisation at the dead attempt's progress.
// Outputs stay byte-identical to an unsharded-equivalent clean baseline.
TEST(ServiceFailoverTest, RecoveryReadsOwnPriorAttemptShardsOnly) {
  // Clean baseline: the same two submissions, no faults.
  auto d_clean = SmallDeployment(6);
  ASSERT_TRUE(d_clean.ok());
  auto clean = WorkflowService::Create(d_clean->get(),
                                       WorkflowServiceOptions{});
  ASSERT_TRUE(clean.ok());
  auto clean_victim = (*clean)->SubmitStaged("snv-calling");
  auto clean_twin = (*clean)->SubmitStaged("snv-calling");
  ASSERT_TRUE(clean_victim.ok());
  ASSERT_TRUE(clean_twin.ok());
  ASSERT_TRUE((*clean)->RunToCompletion().ok());
  const SubmissionRecord* clean_rec = (*clean)->record(*clean_victim);
  ASSERT_EQ(clean_rec->state, SubmissionState::kSucceeded);
  auto clean_files = DfsSnapshot((*d_clean)->dfs.get());

  // Faulted run: kill the victim's AM mid-flight; its twin keeps going.
  auto d = SmallDeployment(6);
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto victim = (*service)->SubmitStaged("snv-calling");
  auto twin = (*service)->SubmitStaged("snv-calling");
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(twin.ok());

  FaultInjector injector(&(*d)->engine);
  (*service)->InstallFaultHandlers(&injector);
  double strike = 0.5 * clean_rec->finished_at;
  ASSERT_TRUE(injector.ArmSpec(StrFormat("kill-am-node:at=%.3f:sub=%lld",
                                         strike,
                                         static_cast<long long>(*victim)))
                  .ok());
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  const SubmissionRecord* rec = (*service)->record(*victim);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, SubmissionState::kSucceeded);
  EXPECT_GE(rec->am_attempts, 2);
  EXPECT_EQ(rec->report.tasks_completed, clean_rec->report.tasks_completed);

  // The scoping property: memoisation is bounded by what the victim's
  // OWN dead attempts completed. The twin ran the same signatures and
  // its outputs exist in DFS, so a leaked merged trace would let the
  // replacement memoise beyond this bound.
  EXPECT_LE(rec->report.tasks_memoised, rec->completed_at_last_failure);

  // Every AM attempt got its own shard; the crashed attempts' shards are
  // sealed, and the victim's recovery view contains only its own runs.
  ProvenanceManager* prov = (*d)->provenance.get();
  EXPECT_GE(prov->shard_count(), 3u);
  for (const std::string& run : prov->RunIds()) {
    const ProvenanceShard* shard = prov->shard(run);
    ASSERT_NE(shard, nullptr);
    EXPECT_TRUE(shard->sealed()) << run;  // every run ended or crashed
  }
  for (const ProvenanceEvent& ev :
       prov->ViewOf({rec->report.run_id}).Events()) {
    EXPECT_EQ(ev.run_id, rec->report.run_id);
  }

  // Byte-identical outputs against the clean baseline.
  auto files = DfsSnapshot((*d)->dfs.get());
  for (const auto& [path, size] : clean_files) {
    auto it = files.find(path);
    ASSERT_NE(it, files.end()) << path;
    EXPECT_EQ(it->second, size) << path;
  }
}

// An AM process crash (node stays healthy) surfaces via the RM's
// heartbeat timeout and recovers the same way — including for an
// iterative Cuneiform workflow, whose recovery replays recorded stdout.
TEST(ServiceFailoverTest, HeartbeatTimeoutRecoversACrashedAm) {
  auto d = SmallDeployment(6);
  ASSERT_TRUE(d.ok());
  auto service = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("kmeans");
  ASSERT_TRUE(id.ok());

  (*d)->engine.ScheduleAt(15.0, [&] {
    ASSERT_TRUE((*service)->InjectAmCrash(*id).ok());
  });
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, SubmissionState::kSucceeded) << rec->report.status.ToString();
  EXPECT_EQ(rec->am_attempts, 2);
  EXPECT_EQ(rec->am_failures, 1);
  // Detection is the liveness timeout, not instantaneous: the recovery
  // latency includes it.
  ASSERT_EQ(rec->recovery_latency_s.size(), 1u);
  EXPECT_GE((*d)->rm->counters().app_failures, 1);
}

// Acceptance: failover is deterministic under a fixed seed — two
// identical faulted runs produce identical outcomes and identical
// provenance shapes.
TEST(ServiceFailoverTest, FailoverIsDeterministicUnderFixedSeed) {
  auto run = [] {
    std::vector<std::tuple<double, int, int, int>> outcome;
    size_t provenance_events = 0;
    auto d = SmallDeployment(6);
    EXPECT_TRUE(d.ok());
    auto service =
        WorkflowService::Create(d->get(), WorkflowServiceOptions{});
    EXPECT_TRUE(service.ok());
    auto id = (*service)->SubmitStaged("montage");
    EXPECT_TRUE(id.ok());
    FaultInjector injector(&(*d)->engine, /*seed=*/99);
    (*service)->InstallFaultHandlers(&injector);
    EXPECT_TRUE(injector.ArmSpec("kill-am-node@12").ok());
    EXPECT_TRUE((*service)->RunToCompletion().ok());
    for (const SubmissionRecord& rec : (*service)->Records()) {
      outcome.emplace_back(rec.finished_at, rec.report.tasks_completed,
                           rec.report.tasks_memoised, rec.am_attempts);
    }
    provenance_events = (*d)->provenance->size();
    return std::make_pair(outcome, provenance_events);
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
}

// When the retry budget is exhausted (or the submission is not
// recoverable), an AM failure is terminal.
TEST(ServiceFailoverTest, RetryExhaustionFailsTheSubmission) {
  auto d = SmallDeployment(6);
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  options.am_retry.max_attempts = 1;  // no failover budget
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  auto id = (*service)->SubmitStaged("montage");
  ASSERT_TRUE(id.ok());
  (*d)->engine.ScheduleAt(10.0, [&] {
    ASSERT_TRUE((*service)->InjectAmCrash(*id).ok());
  });
  ASSERT_TRUE((*service)->RunToCompletion().ok());
  const SubmissionRecord* rec = (*service)->record(*id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, SubmissionState::kFailed);
  EXPECT_EQ(rec->am_failures, 1);
  EXPECT_FALSE(rec->report.status.ok());
  const ServiceQueueCounters* counters =
      (*service)->queue_counters("default");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->failed, 1);
}

// Acceptance: an 8-workflow burst with injected AM-node kills completes
// every submission.
TEST(ServiceFailoverTest, BurstSurvivesRepeatedAmNodeKills) {
  auto d = SmallDeployment(10);
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  options.rm_scheduler = "fair";
  ServiceQueueOptions q;
  q.rm.name = "default";
  q.max_concurrent_ams = 8;
  options.queues = {q};
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok());
  const char* names[] = {"snv-calling", "montage", "kmeans", "montage",
                         "snv-calling", "kmeans", "montage", "kmeans"};
  std::vector<SubmissionId> ids;
  for (const char* name : names) {
    auto id = (*service)->SubmitStaged(name);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  FaultInjector injector(&(*d)->engine, /*seed=*/5);
  (*service)->InstallFaultHandlers(&injector);
  ASSERT_TRUE(injector.ArmSpec("kill-am-node@15,kill-am-node@40").ok());

  ASSERT_TRUE((*service)->RunToCompletion().ok());
  EXPECT_EQ(injector.counters().node_kills, 2);
  int recovered = 0;
  for (SubmissionId id : ids) {
    const SubmissionRecord* rec = (*service)->record(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->state, SubmissionState::kSucceeded)
        << rec->name << ": " << rec->report.status.ToString();
    recovered += rec->am_failures;
  }
  EXPECT_GE(recovered, 2);  // each node kill took down at least one AM
}

TEST(ServiceTest, PreemptionRestoresGuaranteeAndChargesNoAttempts) {
  // A batch burst saturates the cluster; a production queue with a 0.7
  // guarantee arrives mid-flight. With preemption on, the RM must kill
  // batch task containers until prod reaches its guarantee within the
  // grace window — and the preempted batch tasks must NOT consume their
  // retry budget (max_attempts = 1 makes any charged attempt fatal).
  auto d = SmallDeployment(
      /*workers=*/4, {{"yarn/preemption", "true"},
                      {"yarn/preemption_grace_s", "2"},
                      {"yarn/max_preempt_per_round", "8"},
                      {"snv/chunks", "8"}});
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions options;
  options.rm_scheduler = "capacity";
  ServiceQueueOptions batch;
  batch.rm = RmQueueConfig{"batch", 0.2, 0.85, 1.0};
  ServiceQueueOptions prod;
  prod.rm = RmQueueConfig{"prod", 0.7, 1.0, 1.0};
  options.queues = {batch, prod};
  auto service = WorkflowService::Create(d->get(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  SubmissionOptions batch_opts;
  batch_opts.queue = "batch";
  batch_opts.hiway.container_priority = 0;
  batch_opts.hiway.task_retry.max_attempts = 1;  // preemption-exempt proof
  std::vector<SubmissionId> batch_ids;
  for (int i = 0; i < 2; ++i) {
    auto id = (*service)->SubmitStaged("snv-calling", batch_opts);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    batch_ids.push_back(*id);
  }
  SubmissionId prod_id = -1;
  (*d)->engine.ScheduleAt(25.0, [&] {
    SubmissionOptions prod_opts;
    prod_opts.queue = "prod";
    prod_opts.hiway.container_priority = 10;
    auto id = (*service)->SubmitStaged("snv-calling", prod_opts);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    prod_id = *id;
  });
  ASSERT_TRUE((*service)->RunToCompletion().ok());

  int preempted_tasks = 0;
  for (const SubmissionRecord& rec : (*service)->Records()) {
    EXPECT_EQ(rec.state, SubmissionState::kSucceeded)
        << rec.name << ": " << rec.report.status.ToString();
    // No attempt was ever charged for a preempted container (and no node
    // blacklisted): with max_attempts = 1 a single charge would have
    // failed the batch workflow outright.
    EXPECT_EQ(rec.report.failed_attempts, 0) << rec.name;
    preempted_tasks += rec.report.tasks_preempted;
  }
  ASSERT_NE(prod_id, -1);  // batch really was still running at t=25
  const ResourceManager& rm = *(*d)->rm;
  EXPECT_GT(rm.counters().preempted_containers, 0);
  EXPECT_EQ(preempted_tasks, rm.counters().preempted_containers);

  // Prod's starvation episode closed within the grace window (plus the
  // allocation-pass cadence that delivers the reclaimed capacity).
  const TenantStats* prod_stats = rm.queue_stats("prod");
  ASSERT_NE(prod_stats, nullptr);
  ASSERT_FALSE(prod_stats->restoration_latency_s.empty());
  double grace = rm.options().preemption_grace_s;
  EXPECT_LE(prod_stats->restoration_latency_s[0], grace + 3.0);
  // Kills were bounded by what restoration needed: batch kept its own
  // guarantee and the run wasted only a small fraction of its work.
  const RmCounters& counters = rm.counters();
  ASSERT_GT(counters.container_work_s, 0.0);
  EXPECT_LT(counters.preempted_work_s / counters.container_work_s, 0.3);
}

TEST(ServiceTest, CreateRejectsBadConfiguration) {
  auto d = SmallDeployment();
  ASSERT_TRUE(d.ok());
  WorkflowServiceOptions bad_scheduler;
  bad_scheduler.rm_scheduler = "lottery";
  EXPECT_TRUE(WorkflowService::Create(d->get(), bad_scheduler)
                  .status()
                  .IsInvalidArgument());
  WorkflowServiceOptions dup_queues;
  ServiceQueueOptions q;
  q.rm.name = "twin";
  dup_queues.queues = {q, q};
  EXPECT_TRUE(WorkflowService::Create(d->get(), dup_queues)
                  .status()
                  .IsInvalidArgument());
  auto unknown = WorkflowService::Create(d->get(), WorkflowServiceOptions{});
  ASSERT_TRUE(unknown.ok());
  EXPECT_TRUE((*unknown)
                  ->SubmitStaged("no-such-workflow")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace hiway
