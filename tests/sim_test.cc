// Tests for the discrete-event engine and the max-min fair flow network —
// the performance model everything else rests on.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/sim/cluster.h"
#include "src/sim/engine.h"
#include "src/sim/flow.h"
#include "src/sim/load_injector.h"

namespace hiway {
namespace {

// ----------------------------------------------------------------- engine -

TEST(SimEngineTest, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.ScheduleAt(3.0, [&] { order.push_back(3); });
  engine.ScheduleAt(1.0, [&] { order.push_back(1); });
  engine.ScheduleAt(2.0, [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.Now(), 3.0);
}

TEST(SimEngineTest, FifoWithinSameTimestamp) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimEngineTest, EventsCanScheduleEvents) {
  SimEngine engine;
  int fired = 0;
  engine.ScheduleAt(1.0, [&] {
    ++fired;
    engine.ScheduleAfter(1.0, [&] { ++fired; });
  });
  engine.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.Now(), 2.0);
}

TEST(SimEngineTest, CancelPreventsExecution) {
  SimEngine engine;
  bool fired = false;
  EventId id = engine.ScheduleAt(1.0, [&] { fired = true; });
  engine.Cancel(id);
  engine.Run();
  EXPECT_FALSE(fired);
}

TEST(SimEngineTest, PastTimestampsClampToNow) {
  SimEngine engine;
  engine.ScheduleAt(5.0, [] {});
  engine.Run();
  double when = -1;
  engine.ScheduleAt(1.0, [&] { when = engine.Now(); });
  engine.Run();
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(SimEngineTest, RunUntilStopsAndAdvancesClock) {
  SimEngine engine;
  int fired = 0;
  engine.ScheduleAt(1.0, [&] { ++fired; });
  engine.ScheduleAt(10.0, [&] { ++fired; });
  engine.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.Now(), 5.0);
  engine.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, RunUntilPredicate) {
  SimEngine engine;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    engine.ScheduleAt(i, [&] { ++count; });
  }
  bool satisfied = engine.RunUntilPredicate([&] { return count == 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(count, 4);
}

// ------------------------------------------------------------ flow network -

TEST(FlowTest, SingleFlowRunsAtCapacity) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("disk", 100.0);
  double completed_at = -1;
  net.StartFlow({{r}, 500.0, kNoRateCap, 1.0,
                 [&] { completed_at = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(completed_at, 5.0, 1e-6);
}

TEST(FlowTest, TwoFlowsShareFairly) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("nic", 100.0);
  double t1 = -1, t2 = -1;
  net.StartFlow({{r}, 500.0, kNoRateCap, 1.0, [&] { t1 = engine.Now(); }});
  net.StartFlow({{r}, 500.0, kNoRateCap, 1.0, [&] { t2 = engine.Now(); }});
  engine.Run();
  // Both run at 50 until one finishes; identical demands finish together.
  EXPECT_NEAR(t1, 10.0, 1e-6);
  EXPECT_NEAR(t2, 10.0, 1e-6);
}

TEST(FlowTest, ShortFlowFreesBandwidthForLong) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("nic", 100.0);
  double t_short = -1, t_long = -1;
  net.StartFlow({{r}, 100.0, kNoRateCap, 1.0,
                 [&] { t_short = engine.Now(); }});
  net.StartFlow({{r}, 500.0, kNoRateCap, 1.0,
                 [&] { t_long = engine.Now(); }});
  engine.Run();
  // Short: 100 at rate 50 -> t=2. Long: 100 done by t=2, 400 at 100 -> t=6.
  EXPECT_NEAR(t_short, 2.0, 1e-6);
  EXPECT_NEAR(t_long, 6.0, 1e-6);
}

TEST(FlowTest, RateCapLimitsFlow) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId cpu = net.AddResource("cpu", 8.0);
  double t = -1;
  // A 2-thread task on an 8-core node: rate 2, not 8.
  net.StartFlow({{cpu}, 10.0, 2.0, 1.0, [&] { t = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(t, 5.0, 1e-6);
}

TEST(FlowTest, CapLeftoverGoesToOthers) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("r", 100.0);
  double t_capped = -1, t_free = -1;
  net.StartFlow({{r}, 100.0, 10.0, 1.0, [&] { t_capped = engine.Now(); }});
  net.StartFlow({{r}, 450.0, kNoRateCap, 1.0, [&] { t_free = engine.Now(); }});
  engine.Run();
  // Capped at 10 -> t=10; the other gets 90 -> 450/90 = 5.
  EXPECT_NEAR(t_capped, 10.0, 1e-6);
  EXPECT_NEAR(t_free, 5.0, 1e-6);
}

TEST(FlowTest, MultiResourceFlowBottlenecks) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId disk = net.AddResource("disk", 200.0);
  ResourceId nic = net.AddResource("nic", 50.0);
  double t = -1;
  net.StartFlow({{disk, nic}, 100.0, kNoRateCap, 1.0,
                 [&] { t = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(t, 2.0, 1e-6);  // limited by the 50 MB/s NIC
}

TEST(FlowTest, WeightedSharing) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("cpu", 4.0);
  double t_heavy = -1, t_light = -1;
  // Weight 3 vs weight 1: rates 3 and 1.
  FlowSpec heavy;
  heavy.resources = {r};
  heavy.demand = 30.0;
  heavy.weight = 3.0;
  heavy.on_complete = [&] { t_heavy = engine.Now(); };
  FlowSpec light;
  light.resources = {r};
  light.demand = 30.0;
  light.weight = 1.0;
  light.on_complete = [&] { t_light = engine.Now(); };
  net.StartFlow(std::move(heavy));
  net.StartFlow(std::move(light));
  engine.Run();
  EXPECT_NEAR(t_heavy, 10.0, 1e-6);   // 30 at rate 3
  // After t=10 the light flow gets the whole resource (cap: none):
  // 10 done by t=10, then 20 at rate 4 -> t=15.
  EXPECT_NEAR(t_light, 15.0, 1e-6);
}

TEST(FlowTest, InfiniteFlowNeverCompletesButConsumes) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("cpu", 2.0);
  double t = -1;
  net.StartFlow({{r}, kInfiniteDemand, 1.0, 1.0, [] { FAIL(); }});
  net.StartFlow({{r}, 10.0, kNoRateCap, 1.0, [&] { t = engine.Now(); }});
  engine.Run();
  // The hog takes 1 core; the finite flow gets the other: 10/1 = 10.
  EXPECT_NEAR(t, 10.0, 1e-6);
  EXPECT_EQ(net.active_flows(), 1u);
}

TEST(FlowTest, CancelRebalancesSurvivors) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("r", 100.0);
  double t = -1;
  FlowId hog = net.StartFlow({{r}, kInfiniteDemand, kNoRateCap, 1.0, {}});
  net.StartFlow({{r}, 300.0, kNoRateCap, 1.0, [&] { t = engine.Now(); }});
  engine.ScheduleAt(2.0, [&] { net.CancelFlow(hog); });
  engine.Run();
  // 2s at 50 = 100 done, remaining 200 at 100 -> t = 4.
  EXPECT_NEAR(t, 4.0, 1e-6);
}

TEST(FlowTest, CapacityChangeMidFlight) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("r", 100.0);
  double t = -1;
  net.StartFlow({{r}, 400.0, kNoRateCap, 1.0, [&] { t = engine.Now(); }});
  engine.ScheduleAt(2.0, [&] { net.SetCapacity(r, 50.0); });
  engine.Run();
  // 200 at 100 by t=2, then 200 at 50 -> t=6.
  EXPECT_NEAR(t, 6.0, 1e-6);
}

TEST(FlowTest, StatsTrackUtilisation) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ResourceId r = net.AddResource("disk", 100.0);
  net.StartFlow({{r}, 200.0, kNoRateCap, 1.0, {}});
  engine.Run();                 // busy 0..2
  engine.ScheduleAt(4.0, [] {});  // idle 2..4
  engine.Run();
  ResourceStats stats = net.Stats(r);
  EXPECT_NEAR(stats.mean_rate, 50.0, 1e-6);      // 200 MB over 4 s
  EXPECT_NEAR(stats.busy_fraction, 0.5, 1e-6);
  EXPECT_NEAR(stats.peak_rate, 100.0, 1e-6);
  net.ResetStats();
  EXPECT_NEAR(net.Stats(r).mean_rate, 0.0, 1e-9);
}

// Property: rates never exceed capacity and are work-conserving.
class FlowInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowInvariantTest, CapacityRespectedAndWorkConserving) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  SimEngine engine;
  FlowNetwork net(&engine);
  std::vector<ResourceId> resources;
  for (int i = 0; i < 5; ++i) {
    resources.push_back(
        net.AddResource("r", 10.0 + 90.0 * rng.NextDouble()));
  }
  int completed = 0;
  const int kFlows = 40;
  for (int i = 0; i < kFlows; ++i) {
    FlowSpec spec;
    size_t k = 1 + rng.UniformInt(3);
    for (size_t j = 0; j < k; ++j) {
      ResourceId r = resources[rng.UniformInt(resources.size())];
      if (std::find(spec.resources.begin(), spec.resources.end(), r) ==
          spec.resources.end()) {
        spec.resources.push_back(r);
      }
    }
    spec.demand = 10.0 + 200.0 * rng.NextDouble();
    if (rng.NextDouble() < 0.3) spec.rate_cap = 1.0 + 20.0 * rng.NextDouble();
    spec.weight = rng.NextDouble() < 0.2 ? 4.0 : 1.0;
    spec.on_complete = [&completed] { ++completed; };
    double start = 20.0 * rng.NextDouble();
    engine.ScheduleAt(start, [&net, spec] { net.StartFlow(spec); });
  }
  // Invariant check after every event: per-resource allocated rate <=
  // capacity (within epsilon).
  bool ok = true;
  engine.RunUntilPredicate([&] {
    for (ResourceId r : resources) {
      // current_rate is internal; Stats' peak covers it cumulatively.
      ResourceStats s = net.Stats(r);
      if (s.peak_rate > s.capacity + 1e-6) ok = false;
    }
    return !ok;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(completed, kFlows);  // every flow eventually completes
  EXPECT_EQ(net.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowInvariantTest,
                         ::testing::Range(1, 13));

// ----------------------------------------------------------------- cluster -

TEST(ClusterTest, UniformSpecNamesNodes) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 4;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(3, node, 1000.0));
  EXPECT_EQ(cluster.num_nodes(), 3);
  EXPECT_EQ(cluster.node(0).name, "node-000");
  EXPECT_EQ(cluster.node(2).name, "node-002");
  EXPECT_DOUBLE_EQ(net.Capacity(cluster.cpu(1)), 4.0);
  EXPECT_DOUBLE_EQ(net.Capacity(cluster.switch_resource()), 1000.0);
  EXPECT_FALSE(cluster.has_ebs());
  EXPECT_FALSE(cluster.has_s3());
}

TEST(ClusterTest, RemoteTransferPathCrossesSwitchAndBothNodes) {
  SimEngine engine;
  FlowNetwork net(&engine);
  Cluster cluster(&engine, &net,
                  ClusterSpec::Uniform(2, NodeSpec{}, 1000.0));
  auto path = cluster.RemoteTransferPath(0, 1);
  EXPECT_EQ(path.size(), 5u);
  EXPECT_EQ(path[0], cluster.disk(0));
  EXPECT_EQ(path[2], cluster.switch_resource());
  EXPECT_EQ(path[4], cluster.disk(1));
}

TEST(ClusterTest, OptionalResources) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ClusterSpec spec = ClusterSpec::Uniform(2, NodeSpec{}, 1000.0);
  spec.ebs_bw_mbps = 160.0;
  spec.s3_bw_mbps = 5000.0;
  Cluster cluster(&engine, &net, spec);
  EXPECT_TRUE(cluster.has_ebs());
  EXPECT_TRUE(cluster.has_s3());
  EXPECT_EQ(cluster.S3ReadPath(1).size(), 3u);
  EXPECT_EQ(cluster.EbsPath(0).size(), 2u);
}

// ------------------------------------------------------------ load injector -

TEST(LoadInjectorTest, CpuStressSlowsTasks) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 2;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(1, node, 1000.0));
  LoadInjector load(&cluster);
  load.StressCpu(0, 2);  // two hogs: aggregate weight 1+log2(2) = 2

  double t = -1;
  net.StartFlow({{cluster.cpu(0)}, 10.0, 1.0, 1.0,
                 [&] { t = engine.Now(); }});
  engine.Run();
  // Total weight 3 on 2 cores: the task (weight 1) gets 2/3 core -> 15 s.
  EXPECT_NEAR(t, 15.0, 1e-6);
  EXPECT_EQ(load.ActiveCount(0), 1);  // one aggregated stress flow
  load.StopAll();
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(LoadInjectorTest, DiskStressContendsForBandwidth) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.disk_bw_mbps = 100.0;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(1, node, 1000.0));
  LoadInjector load(&cluster);
  load.StressDisk(0, 4, 40.0);  // aggregate weight 1+log2(4) = 3

  double t = -1;
  net.StartFlow({{cluster.disk(0)}, 100.0, kNoRateCap, 1.0,
                 [&] { t = engine.Now(); }});
  engine.Run();
  // Weight 3 vs 1: task gets 25 MB/s -> 4 s.
  EXPECT_NEAR(t, 4.0, 1e-6);
  load.StopNode(0);
  EXPECT_EQ(load.ActiveCount(0), 0);
}

TEST(LoadInjectorTest, StressZeroIsNoop) {
  SimEngine engine;
  FlowNetwork net(&engine);
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(1, NodeSpec{}, 100.0));
  LoadInjector load(&cluster);
  load.StressCpu(0, 0);
  load.StressDisk(0, 0);
  EXPECT_EQ(net.active_flows(), 0u);
}

}  // namespace
}  // namespace hiway
