// Tests for the container-side task lifecycle and the storage adapters.

#include "src/core/task_executor.h"

#include <gtest/gtest.h>

#include "src/common/strings.h"

namespace hiway {
namespace {

struct ExecRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Dfs> dfs;
  ToolRegistry tools;
  std::unique_ptr<DfsStorageAdapter> storage;
  std::unique_ptr<TaskExecutor> executor;

  explicit ExecRig(int nodes = 2, double speed_factor_node0 = 1.0) {
    NodeSpec node;
    node.cores = 4;
    node.disk_bw_mbps = 100.0;
    node.nic_bw_mbps = 100.0;
    ClusterSpec spec = ClusterSpec::Uniform(nodes, node, 1000.0);
    spec.nodes[0].speed_factor = speed_factor_node0;
    cluster = std::make_unique<Cluster>(&engine, &net, spec);
    DfsOptions dfs_options;
    dfs_options.replication = 1;
    dfs = std::make_unique<Dfs>(cluster.get(), dfs_options);
    storage = std::make_unique<DfsStorageAdapter>(dfs.get());
    executor = std::make_unique<TaskExecutor>(cluster.get(), &tools,
                                              storage.get());
  }
};

TaskSpec SimpleTask(std::string tool, std::vector<std::string> in,
                    std::string out) {
  TaskSpec t;
  t.id = 1;
  t.signature = tool;
  t.tool = std::move(tool);
  t.input_files = std::move(in);
  if (!out.empty()) {
    t.outputs.push_back(OutputSpec{"out", std::move(out), {}, false});
  }
  return t;
}

ToolProfile FixedTool(std::string name, double fixed_s, int threads = 1) {
  ToolProfile p;
  p.name = std::move(name);
  p.fixed_cpu_seconds = fixed_s;
  p.max_threads = threads;
  p.output_ratio = 1.0;
  return p;
}

TEST(TaskExecutorTest, LifecycleStagesComputesAndPublishes) {
  ExecRig rig;
  rig.tools.Register(FixedTool("tool", 10.0));
  ASSERT_TRUE(rig.dfs->IngestFile("/in", 100 << 20, NodeId{0}).ok());
  TaskAttemptOutcome outcome;
  bool done = false;
  rig.executor->Execute(SimpleTask("tool", {"/in"}, "/out"), 0, 4,
                        [&](TaskAttemptOutcome o) {
                          outcome = std::move(o);
                          done = true;
                        });
  rig.engine.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.result.status.ok());
  // stage-in: 100 MB at 100 MB/s = 1 s; compute 10 s; stage-out ~1 s.
  EXPECT_NEAR(outcome.result.stage_in_seconds, 1.0, 0.01);
  EXPECT_NEAR(outcome.result.Makespan(), 12.0, 0.1);
  EXPECT_TRUE(rig.dfs->Exists("/out"));
  ASSERT_EQ(outcome.result.produced_files.size(), 1u);
  EXPECT_EQ(outcome.result.produced_files[0].second, 100 << 20);  // ratio 1
  // Transfers recorded for provenance: one in, one out.
  ASSERT_EQ(outcome.transfers.size(), 2u);
  EXPECT_TRUE(outcome.transfers[0].stage_in);
  EXPECT_FALSE(outcome.transfers[1].stage_in);
}

TEST(TaskExecutorTest, ThreadCapAndContainerSizeGovernComputeRate) {
  ExecRig rig;
  ToolProfile p = FixedTool("mt", 0.0, 8);
  p.cpu_seconds_per_mb = 1.0;  // 10 MB input -> 10 core-seconds
  rig.tools.Register(p);
  ASSERT_TRUE(rig.dfs->IngestFile("/in", 10 << 20, NodeId{0}).ok());
  double makespan = 0.0;
  rig.executor->Execute(SimpleTask("mt", {"/in"}, "/out"), 0, 2,
                        [&](TaskAttemptOutcome o) {
                          makespan = o.result.Makespan();
                        });
  rig.engine.Run();
  // Container has 2 vcores though the tool could use 8: compute = 5 s
  // (+ ~0.1 stage-in + ~0.2 stage-out).
  EXPECT_NEAR(makespan, 5.0 + 0.1 + 0.1, 0.25);
}

TEST(TaskExecutorTest, SlowNodesTakeProportionallyLonger) {
  ExecRig slow(2, /*speed_factor_node0=*/0.5);
  slow.tools.Register(FixedTool("tool", 10.0));
  double on_slow = 0.0, on_fast = 0.0;
  TaskSpec t1 = SimpleTask("tool", {}, "/out1");
  TaskSpec t2 = SimpleTask("tool", {}, "/out2");
  t2.id = 2;
  slow.executor->Execute(t1, 0, 1, [&](TaskAttemptOutcome o) {
    on_slow = o.result.Makespan();
  });
  slow.executor->Execute(t2, 1, 1, [&](TaskAttemptOutcome o) {
    on_fast = o.result.Makespan();
  });
  slow.engine.Run();
  EXPECT_GT(on_slow, 1.8 * on_fast);
}

TEST(TaskExecutorTest, OutputSizesFollowProfileRatios) {
  ExecRig rig;
  ToolProfile p = FixedTool("ratio-tool", 1.0);
  p.output_ratio = 0.5;
  rig.tools.Register(p);
  ASSERT_TRUE(rig.dfs->IngestFile("/in", 100 << 20, NodeId{0}).ok());
  int64_t produced = 0;
  rig.executor->Execute(SimpleTask("ratio-tool", {"/in"}, "/out"), 0, 1,
                        [&](TaskAttemptOutcome o) {
                          produced = o.result.produced_files[0].second;
                        });
  rig.engine.Run();
  EXPECT_EQ(produced, 50 << 20);
}

TEST(TaskExecutorTest, ParamOverridesOutputRatio) {
  ExecRig rig;
  ToolProfile p = FixedTool("cram-tool", 1.0);
  p.output_ratio = 0.35;
  rig.tools.Register(p);
  ASSERT_TRUE(rig.dfs->IngestFile("/in", 100 << 20, NodeId{0}).ok());
  TaskSpec task = SimpleTask("cram-tool", {"/in"}, "/out");
  task.params["output_ratio"] = "0.12";
  int64_t produced = 0;
  rig.executor->Execute(task, 0, 1, [&](TaskAttemptOutcome o) {
    produced = o.result.produced_files[0].second;
  });
  rig.engine.Run();
  EXPECT_EQ(produced, 12 << 20);
}

TEST(TaskExecutorTest, ExplicitOutputSizeWins) {
  ExecRig rig;
  rig.tools.Register(FixedTool("t", 1.0));
  ASSERT_TRUE(rig.dfs->IngestFile("/in", 100 << 20, NodeId{0}).ok());
  TaskSpec task = SimpleTask("t", {"/in"}, "/out");
  task.outputs[0].size_bytes = 4242;
  int64_t produced = 0;
  rig.executor->Execute(task, 0, 1, [&](TaskAttemptOutcome o) {
    produced = o.result.produced_files[0].second;
  });
  rig.engine.Run();
  EXPECT_EQ(produced, 4242);
}

TEST(TaskExecutorTest, StdoutFunctionDrivesValueOutputs) {
  ExecRig rig;
  ToolProfile p = FixedTool("decider", 1.0);
  int invocations_seen = -1;
  p.stdout_fn = [&](const ToolInvocation& inv) {
    invocations_seen = inv.prior_invocations;
    return std::string("verdict");
  };
  rig.tools.Register(p);
  TaskSpec task = SimpleTask("decider", {}, "");
  task.outputs.push_back(OutputSpec{"v", "", {}, true});  // value output
  std::string stdout_value;
  rig.executor->Execute(task, 0, 1, [&](TaskAttemptOutcome o) {
    stdout_value = o.result.stdout_value;
  });
  rig.engine.Run();
  EXPECT_EQ(stdout_value, "verdict");
  EXPECT_EQ(invocations_seen, 0);
  // Second invocation sees the bumped counter.
  TaskSpec again = task;
  again.id = 2;
  rig.executor->Execute(again, 0, 1, [&](TaskAttemptOutcome) {});
  rig.engine.Run();
  EXPECT_EQ(invocations_seen, 1);
}

TEST(TaskExecutorTest, MissingToolFailsAttempt) {
  ExecRig rig;
  Status status = Status::OK();
  rig.executor->Execute(SimpleTask("unregistered", {}, "/out"), 0, 1,
                        [&](TaskAttemptOutcome o) {
                          status = o.result.status;
                        });
  rig.engine.Run();
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_FALSE(rig.dfs->Exists("/out"));
}

TEST(TaskExecutorTest, MissingInputFailsAttempt) {
  ExecRig rig;
  rig.tools.Register(FixedTool("t", 1.0));
  Status status = Status::OK();
  rig.executor->Execute(SimpleTask("t", {"/nope"}, "/out"), 0, 1,
                        [&](TaskAttemptOutcome o) {
                          status = o.result.status;
                        });
  rig.engine.Run();
  EXPECT_TRUE(status.IsNotFound());
}

TEST(TaskExecutorTest, InjectedFailuresBurnRuntime) {
  ExecRig rig;
  ToolProfile p = FixedTool("flaky", 10.0);
  p.failure_probability = 1.0;  // always fails
  rig.tools.Register(p);
  Status status = Status::OK();
  double makespan = 0.0;
  rig.executor->Execute(SimpleTask("flaky", {}, "/out"), 0, 1,
                        [&](TaskAttemptOutcome o) {
                          status = o.result.status;
                          makespan = o.result.Makespan();
                        });
  rig.engine.Run();
  EXPECT_TRUE(status.IsRuntimeError());
  EXPECT_GE(makespan, 10.0);  // the crash comes after the compute burn
}

TEST(TaskExecutorTest, ScratchIoExtendsRuntime) {
  ExecRig rig;
  ToolProfile with_scratch = FixedTool("scratchy", 5.0);
  with_scratch.scratch_mb_per_input_mb = 10.0;  // 100 MB in -> 1000 MB
  rig.tools.Register(with_scratch);
  ASSERT_TRUE(rig.dfs->IngestFile("/in", 100 << 20, NodeId{0}).ok());
  double makespan = 0.0;
  rig.executor->Execute(SimpleTask("scratchy", {"/in"}, "/out"), 0, 1,
                        [&](TaskAttemptOutcome o) {
                          makespan = o.result.Makespan();
                        });
  rig.engine.Run();
  // 1 stage-in + 5 compute + 10 scratch (1000 MB at 100 MB/s) + ~1 out.
  EXPECT_NEAR(makespan, 17.0, 0.5);
}

// ------------------------------------------- SharedVolumeStorageAdapter --

TEST(SharedVolumeAdapterTest, AllTrafficCrossesEbs) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 4;
  node.nic_bw_mbps = 1000.0;
  ClusterSpec spec = ClusterSpec::Uniform(2, node, 10000.0);
  spec.ebs_bw_mbps = 100.0;
  Cluster cluster(&engine, &net, spec);
  SharedVolumeStorageAdapter volume(&cluster, /*client_mbps=*/50.0);
  volume.AddFile("/in", 100 << 20);
  EXPECT_TRUE(volume.Exists("/in"));
  EXPECT_EQ(*volume.FileSize("/in"), 100 << 20);
  EXPECT_FALSE(volume.Exists("/missing"));
  EXPECT_TRUE(volume.FileSize("/missing").status().IsNotFound());

  double t = -1;
  volume.StageIn("/in", 0, [&](Status st, int64_t bytes, double seconds) {
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(bytes, 100 << 20);
    t = seconds;
  });
  engine.Run();
  // Client cap 50 MB/s, not the 1000 MB/s NIC: 2 s.
  EXPECT_NEAR(t, 2.0, 0.01);
  EXPECT_GT(net.Stats(cluster.ebs()).peak_rate, 0.0);
}

TEST(SharedVolumeAdapterTest, ConcurrentClientsContendOnVolume) {
  SimEngine engine;
  FlowNetwork net(&engine);
  ClusterSpec spec = ClusterSpec::Uniform(4, NodeSpec{}, 10000.0);
  spec.ebs_bw_mbps = 100.0;
  Cluster cluster(&engine, &net, spec);
  SharedVolumeStorageAdapter volume(&cluster, /*client_mbps=*/50.0);
  for (int i = 0; i < 4; ++i) {
    volume.AddFile(StrFormat("/f%d", i), 100 << 20);
  }
  int done = 0;
  double last = 0.0;
  for (int i = 0; i < 4; ++i) {
    volume.StageIn(StrFormat("/f%d", i), i,
                   [&](Status st, int64_t, double) {
                     EXPECT_TRUE(st.ok());
                     ++done;
                     last = engine.Now();
                   });
  }
  engine.Run();
  EXPECT_EQ(done, 4);
  // 4 clients want 50 each but share a 100 MB/s volume: 25 each -> 4 s.
  EXPECT_NEAR(last, 4.0, 0.05);
}

}  // namespace
}  // namespace hiway
