// Tests for the black-box tool registry and the standard tool library.

#include "src/tools/standard_tools.h"

#include <gtest/gtest.h>

#include "src/tools/tool_registry.h"

namespace hiway {
namespace {

TEST(ToolRegistryTest, RegisterFindReplace) {
  ToolRegistry registry;
  EXPECT_FALSE(registry.Contains("x"));
  EXPECT_TRUE(registry.Find("x").status().IsNotFound());
  ToolProfile p;
  p.name = "x";
  p.fixed_cpu_seconds = 1.0;
  registry.Register(p);
  ASSERT_TRUE(registry.Contains("x"));
  EXPECT_DOUBLE_EQ((*registry.Find("x"))->fixed_cpu_seconds, 1.0);
  p.fixed_cpu_seconds = 9.0;
  registry.Register(p);  // replace
  EXPECT_DOUBLE_EQ((*registry.Find("x"))->fixed_cpu_seconds, 9.0);
  EXPECT_EQ(registry.Names().size(), 1u);
}

TEST(ToolRegistryTest, InvocationCountersPerTool) {
  ToolRegistry registry;
  ToolProfile a;
  a.name = "a";
  registry.Register(a);
  ToolProfile b;
  b.name = "b";
  registry.Register(b);
  int prior = -1;
  ASSERT_TRUE(registry.FindForInvocation("a", &prior).ok());
  EXPECT_EQ(prior, 0);
  ASSERT_TRUE(registry.FindForInvocation("a", &prior).ok());
  EXPECT_EQ(prior, 1);
  ASSERT_TRUE(registry.FindForInvocation("b", &prior).ok());
  EXPECT_EQ(prior, 0);  // independent counter
  registry.ResetInvocationCounts();
  ASSERT_TRUE(registry.FindForInvocation("a", &prior).ok());
  EXPECT_EQ(prior, 0);
}

TEST(StandardToolsTest, AllPaperToolsRegistered) {
  ToolRegistry registry;
  RegisterStandardTools(&registry);
  for (const char* name :
       {"bowtie2", "samtools-sort", "varscan", "annovar",           // SNV
        "fastqc", "trimmomatic", "tophat2", "cufflinks",            // RNA
        "cuffmerge", "cuffdiff",                                    //
        "mProjectPP", "mDiffFit", "mConcatFit", "mBgModel",         // Montage
        "mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG",       //
        "kmeans-init", "kmeans-step", "kmeans-update",              // k-means
        "kmeans-assign", "kmeans-check"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(StandardToolsTest, ProfilesAreSane) {
  ToolRegistry registry;
  RegisterStandardTools(&registry);
  for (const std::string& name : registry.Names()) {
    const ToolProfile* p = *registry.Find(name);
    EXPECT_GE(p->cpu_seconds_per_mb, 0.0) << name;
    EXPECT_GE(p->fixed_cpu_seconds, 0.0) << name;
    EXPECT_GE(p->max_threads, 1) << name;
    EXPECT_GE(p->output_ratio, 0.0) << name;
    EXPECT_GE(p->scratch_mb_per_input_mb, 0.0) << name;
    EXPECT_GE(p->min_output_bytes, 0) << name;
    EXPECT_LT(p->runtime_noise_sigma, 0.5) << name;  // noise, not chaos
    EXPECT_DOUBLE_EQ(p->failure_probability, 0.0) << name;
  }
}

TEST(StandardToolsTest, HeavyStepsAreMultithreaded) {
  // The paper relies on the alignment / variant-calling steps being
  // "multithreaded and CPU-bound" (Sec. 4.1) and on TopHat 2 making
  // "heavy use of multithreading" (Sec. 4.2).
  ToolRegistry registry;
  RegisterStandardTools(&registry);
  EXPECT_GE((*registry.Find("bowtie2"))->max_threads, 8);
  EXPECT_GE((*registry.Find("varscan"))->max_threads, 2);
  EXPECT_GE((*registry.Find("tophat2"))->max_threads, 8);
  // Montage binaries are single-threaded.
  EXPECT_EQ((*registry.Find("mProjectPP"))->max_threads, 1);
}

TEST(StandardToolsTest, TophatGeneratesHeavyScratch) {
  // "generates large amounts of intermediate files" — the Fig. 8 lever.
  ToolRegistry registry;
  RegisterRnaSeqTools(&registry);
  EXPECT_GE((*registry.Find("tophat2"))->scratch_mb_per_input_mb, 5.0);
  EXPECT_LT((*registry.Find("cufflinks"))->scratch_mb_per_input_mb, 1.0);
}

TEST(StandardToolsTest, KmeansCheckConvergesOnConfiguredInvocation) {
  ToolRegistry registry;
  RegisterKmeansTools(&registry, /*converge_after=*/3);
  for (int invocation = 0; invocation < 5; ++invocation) {
    int prior = 0;
    const ToolProfile* p = *registry.FindForInvocation("kmeans-check",
                                                       &prior);
    ToolInvocation inv;
    inv.prior_invocations = prior;
    std::string verdict = p->stdout_fn(inv);
    if (invocation < 2) {
      EXPECT_EQ(verdict, "") << invocation;
    } else {
      EXPECT_EQ(verdict, "true") << invocation;
    }
  }
}

TEST(StandardToolsTest, KmeansCheckHonoursTaskParameterOverride) {
  ToolRegistry registry;
  RegisterKmeansTools(&registry, /*converge_after=*/99);
  TaskSpec task;
  task.params["converge_after"] = "1";
  ToolInvocation inv;
  inv.task = &task;
  inv.prior_invocations = 0;
  const ToolProfile* p = *registry.Find("kmeans-check");
  EXPECT_EQ(p->stdout_fn(inv), "true");  // param beats registration default
}

}  // namespace
}  // namespace hiway
