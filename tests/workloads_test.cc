// Tests for the workload generators: documents parse in their native
// front-ends and have the structure the paper describes.

#include "src/workloads/workloads.h"

#include <gtest/gtest.h>

#include <set>

#include "src/lang/cuneiform.h"
#include "src/lang/dax_source.h"
#include "src/lang/galaxy_source.h"

namespace hiway {
namespace {

TEST(SnvWorkloadTest, GeneratesParsableCuneiform) {
  SnvWorkloadOptions options;
  options.num_chunks = 5;
  GeneratedWorkload workload = MakeSnvCallingWorkflow(options);
  EXPECT_EQ(workload.inputs.size(), 5u);
  for (const auto& [path, size] : workload.inputs) {
    EXPECT_EQ(size, options.chunk_bytes);
  }
  auto source = CuneiformSource::Parse(workload.document);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
}

TEST(SnvWorkloadTest, EmitsFourTasksPerChunkWhenDriven) {
  SnvWorkloadOptions options;
  options.num_chunks = 3;
  GeneratedWorkload workload = MakeSnvCallingWorkflow(options);
  auto source = CuneiformSource::Parse(workload.document);
  ASSERT_TRUE(source.ok());
  // Drive to completion with a fake executor.
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  std::vector<TaskSpec> pending = *tasks;
  int executed = 0;
  while (!pending.empty()) {
    TaskSpec spec = pending.back();
    pending.pop_back();
    ++executed;
    TaskResult result;
    result.id = spec.id;
    result.status = Status::OK();
    for (const OutputSpec& out : spec.outputs) {
      if (!out.is_value) result.produced_files.emplace_back(out.path, 1);
    }
    auto more = (*source)->OnTaskCompleted(result);
    ASSERT_TRUE(more.ok());
    pending.insert(pending.end(), more->begin(), more->end());
  }
  EXPECT_EQ(executed, 12);  // align/sort/call/annotate x 3 chunks
  EXPECT_TRUE((*source)->IsDone());
}

TEST(SnvWorkloadTest, CramTogglesSortOutputRatio) {
  SnvWorkloadOptions cram;
  cram.cram_compression = true;
  EXPECT_NE(MakeSnvCallingWorkflow(cram).document.find("0.12"),
            std::string::npos);
  SnvWorkloadOptions bam;
  bam.cram_compression = false;
  EXPECT_NE(MakeSnvCallingWorkflow(bam).document.find("0.35"),
            std::string::npos);
}

TEST(TraplineWorkloadTest, GeneratesParsableGalaxyJson) {
  RnaSeqWorkloadOptions options;
  GeneratedWorkload workload = MakeTraplineWorkflow(options);
  EXPECT_EQ(workload.inputs.size(), 6u);  // 2 conditions x 3 replicates
  std::map<std::string, std::string> bindings;
  for (const auto& [name, path] : TraplineInputBindings(options)) {
    bindings[name] = path;
  }
  EXPECT_EQ(bindings.size(), 6u);
  auto source = GalaxySource::Parse(workload.document, bindings);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // 6 x (fastqc + trimmomatic + tophat2 + cufflinks) + cuffmerge +
  // cuffdiff = 26 tool steps.
  EXPECT_EQ((*source)->task_count(), 26u);
}

TEST(TraplineWorkloadTest, CuffdiffConsumesEveryAlignment) {
  RnaSeqWorkloadOptions options;
  GeneratedWorkload workload = MakeTraplineWorkflow(options);
  std::map<std::string, std::string> bindings;
  for (const auto& [name, path] : TraplineInputBindings(options)) {
    bindings[name] = path;
  }
  auto source = GalaxySource::Parse(workload.document, bindings);
  ASSERT_TRUE(source.ok());
  auto tasks = (*source)->Init();
  ASSERT_TRUE(tasks.ok());
  const TaskSpec* cuffdiff = nullptr;
  for (const TaskSpec& t : *tasks) {
    if (t.signature == "cuffdiff") cuffdiff = &t;
  }
  ASSERT_NE(cuffdiff, nullptr);
  // merged annotation + 6 alignments.
  EXPECT_EQ(cuffdiff->input_files.size(), 7u);
}

TEST(MontageWorkloadTest, GeneratesParsableDax) {
  MontageWorkloadOptions options;
  GeneratedWorkload workload = MakeMontageWorkflow(options);
  EXPECT_EQ(workload.inputs.size(), 11u);
  auto source = DaxSource::Parse(workload.document);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // 11 projections + 19 diffs + concat + bgmodel + 11 background +
  // imgtbl + add + shrink + jpeg = 47 jobs.
  EXPECT_EQ((*source)->task_count(), 47u);
  // The staged inputs are exactly the DAX's required inputs.
  std::set<std::string> staged;
  for (const auto& [path, size] : workload.inputs) staged.insert(path);
  for (const auto& [path, size] : (*source)->required_inputs()) {
    EXPECT_EQ(staged.count(path), 1u) << path;
  }
  EXPECT_EQ((*source)->required_inputs().size(), staged.size());
  // The final products: the mosaic JPEG (and the shrunken FITS feeds it).
  EXPECT_EQ((*source)->Targets(), std::vector<std::string>{"/dax/mosaic.jpg"});
}

TEST(MontageWorkloadTest, ParallelismMatchesImageCount) {
  MontageWorkloadOptions options;
  options.num_images = 7;
  GeneratedWorkload workload = MakeMontageWorkflow(options);
  auto source = DaxSource::Parse(workload.document);
  ASSERT_TRUE(source.ok());
  auto tasks = (*source)->Init();
  int projections = 0;
  for (const TaskSpec& t : *tasks) {
    if (t.signature == "mProjectPP") ++projections;
  }
  EXPECT_EQ(projections, 7);
}

TEST(KmeansWorkloadTest, GeneratesIterativeCuneiform) {
  KmeansWorkloadOptions options;
  options.converge_after = 4;
  GeneratedWorkload workload = MakeKmeansWorkflow(options);
  ASSERT_EQ(workload.inputs.size(), 1u);
  auto source = CuneiformSource::Parse(workload.document);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_FALSE((*source)->IsStatic());
  EXPECT_NE(workload.document.find("converge_after: '4'"),
            std::string::npos);
}

}  // namespace
}  // namespace hiway
