// Tests for the simulated YARN ResourceManager: capacity accounting,
// locality preferences, strict placement, blacklists, and node failure.

#include "src/yarn/yarn.h"

#include <gtest/gtest.h>

#include <deque>

namespace hiway {
namespace {

/// Records allocations for inspection.
class RecordingAm : public AmCallbacks {
 public:
  void OnContainerAllocated(const Container& container,
                            int64_t cookie) override {
    allocations.push_back({container, cookie});
  }
  void OnContainerLost(const Container& container) override {
    lost.push_back(container);
  }
  std::vector<std::pair<Container, int64_t>> allocations;
  std::vector<Container> lost;
};

struct YarnRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ResourceManager> rm;
  RecordingAm am;
  ApplicationId app = -1;

  explicit YarnRig(int nodes, int cores = 4, double memory_mb = 4096) {
    NodeSpec node;
    node.cores = cores;
    node.memory_mb = memory_mb;
    cluster = std::make_unique<Cluster>(
        &engine, &net, ClusterSpec::Uniform(nodes, node, 1000.0));
    rm = std::make_unique<ResourceManager>(cluster.get(), YarnOptions{});
    auto result = rm->RegisterApplication("test-app", &am, 1, 512);
    EXPECT_TRUE(result.ok());
    app = *result;
  }
};

TEST(YarnTest, AmContainerConsumesCapacity) {
  YarnRig rig(1, 4, 4096);
  EXPECT_EQ(rig.rm->free_vcores(0), 3);  // 4 - AM's 1
  EXPECT_DOUBLE_EQ(rig.rm->free_memory_mb(0), 4096 - 512);
  EXPECT_EQ(rig.rm->running_containers(), 1);
  auto node = rig.rm->AmNode(rig.app);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 0);
}

TEST(YarnTest, RegisterFailsWithoutCapacity) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 1;
  node.memory_mb = 100;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(1, node, 100.0));
  ResourceManager rm(&cluster, YarnOptions{});
  RecordingAm am;
  auto r = rm.RegisterApplication("fat-am", &am, 2, 50);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(YarnTest, RequestYieldsAllocationAfterDelay) {
  YarnRig rig(2);
  ContainerRequest request;
  request.vcores = 2;
  request.memory_mb = 1024;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.vcores, 2);
  EXPECT_GE(rig.engine.Now(), rig.rm->options().allocation_delay_s);
}

TEST(YarnTest, CookiesComeBackWithAllocation) {
  YarnRig rig(2);
  ContainerRequest request;
  request.cookie = 777;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].second, 777);
}

TEST(YarnTest, PreferredNodeHonoredWhenFree) {
  YarnRig rig(4);
  ContainerRequest request;
  request.preferred_node = 2;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.node, 2);
}

TEST(YarnTest, RelaxedRequestFallsBackToOtherNodes) {
  YarnRig rig(2, 2, 2048);
  // Fill node 0 (it already hosts the AM: 1 of 2 cores used).
  ContainerRequest filler;
  filler.vcores = 1;
  filler.preferred_node = 0;
  rig.rm->SubmitRequest(rig.app, filler);
  rig.engine.Run();
  // Now prefer node 0 but accept elsewhere.
  ContainerRequest request;
  request.vcores = 2;
  request.preferred_node = 0;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_EQ(rig.am.allocations[1].first.node, 1);
}

TEST(YarnTest, StrictRequestWaitsForItsNode) {
  YarnRig rig(2, 2, 2048);
  // Node 1 full.
  ContainerRequest filler;
  filler.vcores = 2;
  filler.preferred_node = 1;
  filler.strict_locality = true;
  rig.rm->SubmitRequest(rig.app, filler);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  ContainerId filler_container = rig.am.allocations[0].first.id;

  ContainerRequest strict;
  strict.vcores = 2;
  strict.preferred_node = 1;
  strict.strict_locality = true;
  rig.rm->SubmitRequest(rig.app, strict);
  rig.engine.RunUntil(rig.engine.Now() + 10.0);
  EXPECT_EQ(rig.am.allocations.size(), 1u);  // still waiting
  EXPECT_EQ(rig.rm->pending_requests(), 1);

  rig.rm->ReleaseContainer(filler_container);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_EQ(rig.am.allocations[1].first.node, 1);
}

TEST(YarnTest, BlacklistAvoidsNodes) {
  YarnRig rig(3, 4, 4096);
  ContainerRequest request;
  request.blacklist = {0, 1};
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.node, 2);
}

TEST(YarnTest, ReleaseRestoresCapacity) {
  YarnRig rig(1, 4, 4096);
  ContainerRequest request;
  request.vcores = 3;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.rm->free_vcores(0), 0);
  rig.rm->ReleaseContainer(rig.am.allocations[0].first.id);
  rig.engine.Run();
  EXPECT_EQ(rig.rm->free_vcores(0), 3);
}

TEST(YarnTest, NeverOvercommitsACore) {
  YarnRig rig(2, 3, 8192);
  for (int i = 0; i < 10; ++i) {
    ContainerRequest request;
    request.vcores = 2;
    request.memory_mb = 512;
    rig.rm->SubmitRequest(rig.app, request);
  }
  rig.engine.Run();
  // Capacity: node0 has 2 free (3 - AM), node1 has 3: fits 1 + 1
  // two-core containers.
  EXPECT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_GE(rig.rm->free_vcores(0), 0);
  EXPECT_GE(rig.rm->free_vcores(1), 0);
  EXPECT_EQ(rig.rm->pending_requests(), 8);
}

TEST(YarnTest, CancelRequestsByCookie) {
  YarnRig rig(1, 1, 600);  // AM eats everything: requests stay pending
  ContainerRequest a;
  a.cookie = 1;
  ContainerRequest b;
  b.cookie = 2;
  rig.rm->SubmitRequest(rig.app, a);
  rig.rm->SubmitRequest(rig.app, b);
  rig.engine.Run();
  EXPECT_EQ(rig.rm->pending_requests(), 2);
  EXPECT_EQ(rig.rm->CancelRequests(rig.app, 1), 1);
  EXPECT_EQ(rig.rm->pending_requests(), 1);
}

TEST(YarnTest, KillNodeReportsLostContainers) {
  YarnRig rig(2, 4, 4096);
  ContainerRequest request;
  request.preferred_node = 1;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  rig.rm->KillNode(1);
  rig.engine.Run();
  ASSERT_EQ(rig.am.lost.size(), 1u);
  EXPECT_EQ(rig.am.lost[0].node, 1);
  EXPECT_FALSE(rig.rm->IsNodeAlive(1));
  EXPECT_EQ(rig.rm->free_vcores(1), 0);
  EXPECT_EQ(rig.rm->counters().lost_containers, 1);
}

TEST(YarnTest, DeadNodeReceivesNoAllocations) {
  YarnRig rig(2, 4, 4096);
  rig.rm->KillNode(1);
  for (int i = 0; i < 4; ++i) {
    rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  }
  rig.engine.Run();
  for (const auto& [container, cookie] : rig.am.allocations) {
    EXPECT_EQ(container.node, 0);
  }
}

TEST(YarnTest, UnregisterDropsPendingRequestsAndFreesAm) {
  YarnRig rig(1, 2, 2048);
  rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  rig.rm->UnregisterApplication(rig.app);
  rig.engine.Run();
  EXPECT_EQ(rig.rm->pending_requests(), 0);
  EXPECT_EQ(rig.rm->running_containers(), 0);
  EXPECT_EQ(rig.rm->free_vcores(0), 2);
}

TEST(YarnTest, FifoOrderAmongEqualRequests) {
  YarnRig rig(1, 3, 8192);
  for (int64_t i = 0; i < 2; ++i) {
    ContainerRequest request;
    request.cookie = i;
    rig.rm->SubmitRequest(rig.app, request);
  }
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_EQ(rig.am.allocations[0].second, 0);
  EXPECT_EQ(rig.am.allocations[1].second, 1);
}

TEST(YarnTest, CountersTrackActivity) {
  YarnRig rig(2);
  rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  rig.engine.Run();
  rig.rm->ReleaseContainer(rig.am.allocations[0].first.id);
  rig.engine.Run();
  const RmCounters& c = rig.rm->counters();
  EXPECT_EQ(c.requests, 1);
  EXPECT_EQ(c.allocations, 2);  // AM container + worker container
  EXPECT_EQ(c.releases, 1);
}

}  // namespace
}  // namespace hiway
