// Tests for the simulated YARN ResourceManager: capacity accounting,
// locality preferences, strict placement, blacklists, and node failure.

#include "src/yarn/yarn.h"

#include <gtest/gtest.h>

#include <deque>

#include "src/yarn/rm_scheduler.h"

namespace hiway {
namespace {

/// Records allocations for inspection.
class RecordingAm : public AmCallbacks {
 public:
  void OnContainerAllocated(const Container& container,
                            int64_t cookie) override {
    allocations.push_back({container, cookie});
  }
  void OnContainerLost(const Container& container,
                       ContainerLossReason reason) override {
    lost.push_back(container);
    loss_reasons.push_back(reason);
  }
  std::vector<std::pair<Container, int64_t>> allocations;
  std::vector<Container> lost;
  std::vector<ContainerLossReason> loss_reasons;
};

struct YarnRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ResourceManager> rm;
  RecordingAm am;
  ApplicationId app = -1;

  explicit YarnRig(int nodes, int cores = 4, double memory_mb = 4096) {
    NodeSpec node;
    node.cores = cores;
    node.memory_mb = memory_mb;
    cluster = std::make_unique<Cluster>(
        &engine, &net, ClusterSpec::Uniform(nodes, node, 1000.0));
    rm = std::make_unique<ResourceManager>(cluster.get(), YarnOptions{});
    auto result = rm->RegisterApplication("test-app", &am, 1, 512);
    EXPECT_TRUE(result.ok());
    app = *result;
  }
};

TEST(YarnTest, AmContainerConsumesCapacity) {
  YarnRig rig(1, 4, 4096);
  EXPECT_EQ(rig.rm->free_vcores(0), 3);  // 4 - AM's 1
  EXPECT_DOUBLE_EQ(rig.rm->free_memory_mb(0), 4096 - 512);
  EXPECT_EQ(rig.rm->running_containers(), 1);
  auto node = rig.rm->AmNode(rig.app);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, 0);
}

TEST(YarnTest, RegisterFailsWithoutCapacity) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 1;
  node.memory_mb = 100;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(1, node, 100.0));
  ResourceManager rm(&cluster, YarnOptions{});
  RecordingAm am;
  auto r = rm.RegisterApplication("fat-am", &am, 2, 50);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(YarnTest, RequestYieldsAllocationAfterDelay) {
  YarnRig rig(2);
  ContainerRequest request;
  request.vcores = 2;
  request.memory_mb = 1024;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.vcores, 2);
  EXPECT_GE(rig.engine.Now(), rig.rm->options().allocation_delay_s);
}

TEST(YarnTest, CookiesComeBackWithAllocation) {
  YarnRig rig(2);
  ContainerRequest request;
  request.cookie = 777;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].second, 777);
}

TEST(YarnTest, PreferredNodeHonoredWhenFree) {
  YarnRig rig(4);
  ContainerRequest request;
  request.preferred_node = 2;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.node, 2);
}

TEST(YarnTest, RelaxedRequestFallsBackToOtherNodes) {
  YarnRig rig(2, 2, 2048);
  // Fill node 0 (it already hosts the AM: 1 of 2 cores used).
  ContainerRequest filler;
  filler.vcores = 1;
  filler.preferred_node = 0;
  rig.rm->SubmitRequest(rig.app, filler);
  rig.engine.Run();
  // Now prefer node 0 but accept elsewhere.
  ContainerRequest request;
  request.vcores = 2;
  request.preferred_node = 0;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_EQ(rig.am.allocations[1].first.node, 1);
}

TEST(YarnTest, StrictRequestWaitsForItsNode) {
  YarnRig rig(2, 2, 2048);
  // Node 1 full.
  ContainerRequest filler;
  filler.vcores = 2;
  filler.preferred_node = 1;
  filler.strict_locality = true;
  rig.rm->SubmitRequest(rig.app, filler);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  ContainerId filler_container = rig.am.allocations[0].first.id;

  ContainerRequest strict;
  strict.vcores = 2;
  strict.preferred_node = 1;
  strict.strict_locality = true;
  rig.rm->SubmitRequest(rig.app, strict);
  rig.engine.RunUntil(rig.engine.Now() + 10.0);
  EXPECT_EQ(rig.am.allocations.size(), 1u);  // still waiting
  EXPECT_EQ(rig.rm->pending_requests(), 1);

  rig.rm->ReleaseContainer(filler_container);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_EQ(rig.am.allocations[1].first.node, 1);
}

TEST(YarnTest, BlacklistAvoidsNodes) {
  YarnRig rig(3, 4, 4096);
  ContainerRequest request;
  request.blacklist = {0, 1};
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.am.allocations[0].first.node, 2);
}

TEST(YarnTest, ReleaseRestoresCapacity) {
  YarnRig rig(1, 4, 4096);
  ContainerRequest request;
  request.vcores = 3;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  EXPECT_EQ(rig.rm->free_vcores(0), 0);
  rig.rm->ReleaseContainer(rig.am.allocations[0].first.id);
  rig.engine.Run();
  EXPECT_EQ(rig.rm->free_vcores(0), 3);
}

TEST(YarnTest, NeverOvercommitsACore) {
  YarnRig rig(2, 3, 8192);
  for (int i = 0; i < 10; ++i) {
    ContainerRequest request;
    request.vcores = 2;
    request.memory_mb = 512;
    rig.rm->SubmitRequest(rig.app, request);
  }
  rig.engine.Run();
  // Capacity: node0 has 2 free (3 - AM), node1 has 3: fits 1 + 1
  // two-core containers.
  EXPECT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_GE(rig.rm->free_vcores(0), 0);
  EXPECT_GE(rig.rm->free_vcores(1), 0);
  EXPECT_EQ(rig.rm->pending_requests(), 8);
}

TEST(YarnTest, CancelRequestsByCookie) {
  YarnRig rig(1, 1, 600);  // AM eats everything: requests stay pending
  ContainerRequest a;
  a.cookie = 1;
  ContainerRequest b;
  b.cookie = 2;
  rig.rm->SubmitRequest(rig.app, a);
  rig.rm->SubmitRequest(rig.app, b);
  rig.engine.Run();
  EXPECT_EQ(rig.rm->pending_requests(), 2);
  EXPECT_EQ(rig.rm->CancelRequests(rig.app, 1), 1);
  EXPECT_EQ(rig.rm->pending_requests(), 1);
}

TEST(YarnTest, KillNodeReportsLostContainers) {
  YarnRig rig(2, 4, 4096);
  ContainerRequest request;
  request.preferred_node = 1;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  rig.rm->KillNode(1);
  rig.engine.Run();
  ASSERT_EQ(rig.am.lost.size(), 1u);
  EXPECT_EQ(rig.am.lost[0].node, 1);
  EXPECT_FALSE(rig.rm->IsNodeAlive(1));
  EXPECT_EQ(rig.rm->free_vcores(1), 0);
  EXPECT_EQ(rig.rm->counters().lost_containers, 1);
}

TEST(YarnTest, NodeLossCarriesTheNodeLostReason) {
  YarnRig rig(2, 4, 4096);
  ContainerRequest request;
  request.preferred_node = 1;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  rig.rm->KillNode(1);
  // Losses are reported synchronously: no engine turn needed.
  ASSERT_EQ(rig.am.loss_reasons.size(), 1u);
  EXPECT_EQ(rig.am.loss_reasons[0], ContainerLossReason::kNodeLost);
}

TEST(YarnTest, KillTaskContainerReportsKilledReason) {
  YarnRig rig(2, 4, 4096);
  rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);
  ContainerId id = rig.am.allocations[0].first.id;
  EXPECT_TRUE(rig.rm->KillContainer(id));
  ASSERT_EQ(rig.am.lost.size(), 1u);
  EXPECT_EQ(rig.am.loss_reasons[0], ContainerLossReason::kKilled);
  // The node survives and the capacity is back.
  EXPECT_TRUE(rig.rm->IsNodeAlive(rig.am.lost[0].node));
  EXPECT_FALSE(rig.rm->KillContainer(999999));
}

TEST(YarnTest, KillingTheAmNodeFailsTheApplication) {
  YarnRig rig(2, 4, 4096);
  // AM sits on node 0; give it a task container on node 1.
  ContainerRequest request;
  request.preferred_node = 1;
  rig.rm->SubmitRequest(rig.app, request);
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 1u);

  std::vector<std::string> failures;
  rig.rm->SetAppFailureListener(
      [&](ApplicationId app, const std::string& name,
          const std::string& reason) {
        EXPECT_EQ(app, rig.app);
        EXPECT_EQ(name, "test-app");
        failures.push_back(reason);
      });
  rig.rm->KillNode(0);
  ASSERT_EQ(failures.size(), 1u);
  // The orphaned task container on node 1 was reclaimed WITHOUT a
  // callback to the dead master, and its resources freed.
  EXPECT_TRUE(rig.am.lost.empty());
  EXPECT_EQ(rig.rm->counters().reclaimed_containers, 2);  // AM + task
  EXPECT_EQ(rig.rm->counters().app_failures, 1);
  EXPECT_EQ(rig.rm->running_containers(), 0);
  EXPECT_EQ(rig.rm->free_vcores(1), 4);
}

TEST(YarnTest, KillContainerOnTheAmFailsTheApplication) {
  YarnRig rig(1, 4, 4096);
  int failures = 0;
  rig.rm->SetAppFailureListener(
      [&](ApplicationId, const std::string&, const std::string&) {
        ++failures;
      });
  std::vector<Container> running = rig.rm->RunningContainers();
  ASSERT_EQ(running.size(), 1u);
  ASSERT_TRUE(running[0].is_am);
  EXPECT_TRUE(rig.rm->KillContainer(running[0].id));
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(rig.rm->counters().app_failures, 1);
  EXPECT_EQ(rig.rm->running_containers(), 0);
}

TEST(YarnTest, HeartbeatTimeoutFailsASilentAm) {
  YarnRig rig(1, 4, 4096);
  std::vector<std::string> reasons;
  rig.rm->SetAppFailureListener(
      [&](ApplicationId, const std::string&, const std::string& reason) {
        reasons.push_back(reason);
      });
  // Opt into liveness monitoring, then fall silent.
  rig.rm->AmHeartbeat(rig.app);
  rig.engine.Run();
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_NE(reasons[0].find("heartbeat timeout"), std::string::npos);
  EXPECT_GE(rig.engine.Now(), rig.rm->options().am_liveness_timeout_s);
}

TEST(YarnTest, AmThatKeepsHeartbeatingIsNotFailed) {
  YarnRig rig(1, 4, 4096);
  int failures = 0;
  rig.rm->SetAppFailureListener(
      [&](ApplicationId, const std::string&, const std::string&) {
        ++failures;
      });
  // Heartbeat every second for 30 s — well past the 10 s timeout — then
  // finish (unregister) while still healthy.
  std::function<void(int)> beat = [&](int remaining) {
    if (remaining == 0) {
      rig.rm->UnregisterApplication(rig.app);
      return;
    }
    rig.rm->AmHeartbeat(rig.app);
    rig.engine.ScheduleAfter(1.0, [&, remaining] { beat(remaining - 1); });
  };
  beat(30);
  rig.engine.Run();
  EXPECT_EQ(failures, 0);
  EXPECT_GE(rig.engine.Now(), 30.0);
}

TEST(YarnTest, NeverHeartbeatingAmIsExemptFromLiveness) {
  YarnRig rig(1, 4, 4096);
  int failures = 0;
  rig.rm->SetAppFailureListener(
      [&](ApplicationId, const std::string&, const std::string&) {
        ++failures;
      });
  rig.engine.ScheduleAt(100.0, [] {});
  rig.engine.Run();
  EXPECT_EQ(failures, 0);
}

TEST(YarnTest, DeadNodeReceivesNoAllocations) {
  YarnRig rig(2, 4, 4096);
  rig.rm->KillNode(1);
  for (int i = 0; i < 4; ++i) {
    rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  }
  rig.engine.Run();
  for (const auto& [container, cookie] : rig.am.allocations) {
    EXPECT_EQ(container.node, 0);
  }
}

TEST(YarnTest, UnregisterDropsPendingRequestsAndFreesAm) {
  YarnRig rig(1, 2, 2048);
  rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  rig.rm->UnregisterApplication(rig.app);
  rig.engine.Run();
  EXPECT_EQ(rig.rm->pending_requests(), 0);
  EXPECT_EQ(rig.rm->running_containers(), 0);
  EXPECT_EQ(rig.rm->free_vcores(0), 2);
}

TEST(YarnTest, FifoOrderAmongEqualRequests) {
  YarnRig rig(1, 3, 8192);
  for (int64_t i = 0; i < 2; ++i) {
    ContainerRequest request;
    request.cookie = i;
    rig.rm->SubmitRequest(rig.app, request);
  }
  rig.engine.Run();
  ASSERT_EQ(rig.am.allocations.size(), 2u);
  EXPECT_EQ(rig.am.allocations[0].second, 0);
  EXPECT_EQ(rig.am.allocations[1].second, 1);
}

TEST(YarnTest, CountersTrackActivity) {
  YarnRig rig(2);
  rig.rm->SubmitRequest(rig.app, ContainerRequest{});
  rig.engine.Run();
  rig.rm->ReleaseContainer(rig.am.allocations[0].first.id);
  rig.engine.Run();
  const RmCounters& c = rig.rm->counters();
  EXPECT_EQ(c.requests, 1);
  EXPECT_EQ(c.allocations, 2);  // AM container + worker container
  EXPECT_EQ(c.releases, 1);
}

// ------------------------------------------------- multi-tenant RM tests -

/// Two applications sharing one RM, optionally under a non-FIFO strategy
/// and custom queues.
struct MultiRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ResourceManager> rm;
  RecordingAm am_a, am_b;
  ApplicationId app_a = -1, app_b = -1;

  MultiRig(int nodes, int cores, double memory_mb,
           const std::string& scheduler = "fifo",
           const std::vector<RmQueueConfig>& queues = {}) {
    NodeSpec node;
    node.cores = cores;
    node.memory_mb = memory_mb;
    cluster = std::make_unique<Cluster>(
        &engine, &net, ClusterSpec::Uniform(nodes, node, 1000.0));
    YarnOptions options;
    options.scheduler = scheduler;
    rm = std::make_unique<ResourceManager>(cluster.get(), options);
    for (const RmQueueConfig& q : queues) rm->ConfigureQueue(q);
  }

  ApplicationId Register(const std::string& name, RecordingAm* am,
                         const std::string& queue = "default",
                         NodeId node = kInvalidNode) {
    auto result = rm->RegisterApplication(name, am, 1, 512, node, queue);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : -1;
  }
};

TEST(YarnMultiAppTest, TwoAmsCompeteForLastContainerFifoOrder) {
  MultiRig rig(1, 3, 8192);
  rig.app_a = rig.Register("a", &rig.am_a);
  rig.app_b = rig.Register("b", &rig.am_b);
  // One core left; whoever asked first gets it.
  rig.rm->SubmitRequest(rig.app_b, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.engine.Run();
  ASSERT_EQ(rig.am_b.allocations.size(), 1u);
  EXPECT_EQ(rig.am_a.allocations.size(), 0u);
  EXPECT_EQ(rig.rm->pending_requests(rig.app_a), 1);
  // Releasing b's container hands the core to the waiting app.
  rig.rm->ReleaseContainer(rig.am_b.allocations[0].first.id);
  rig.engine.Run();
  EXPECT_EQ(rig.am_a.allocations.size(), 1u);
}

TEST(YarnMultiAppTest, CancelRequestsTouchesOnlyTheCallingApp) {
  MultiRig rig(1, 2, 8192);  // AMs eat both cores: everything stays queued
  rig.app_a = rig.Register("a", &rig.am_a);
  rig.app_b = rig.Register("b", &rig.am_b);
  ContainerRequest request;
  request.cookie = 7;
  rig.rm->SubmitRequest(rig.app_a, request);
  rig.rm->SubmitRequest(rig.app_b, request);
  rig.engine.Run();
  EXPECT_EQ(rig.rm->CancelRequests(rig.app_a, 7), 1);
  EXPECT_EQ(rig.rm->pending_requests(rig.app_a), 0);
  EXPECT_EQ(rig.rm->pending_requests(rig.app_b), 1);
}

TEST(YarnMultiAppTest, KillNodeReportsLossesOnlyToTheOwningAm) {
  MultiRig rig(2, 4, 4096);
  rig.app_a = rig.Register("a", &rig.am_a, "default", 0);
  rig.app_b = rig.Register("b", &rig.am_b, "default", 0);
  ContainerRequest on_node1;
  on_node1.preferred_node = 1;
  on_node1.strict_locality = true;
  rig.rm->SubmitRequest(rig.app_a, on_node1);
  ContainerRequest on_node0;
  on_node0.preferred_node = 0;
  on_node0.strict_locality = true;
  rig.rm->SubmitRequest(rig.app_b, on_node0);
  rig.engine.Run();
  ASSERT_EQ(rig.am_a.allocations.size(), 1u);
  ASSERT_EQ(rig.am_b.allocations.size(), 1u);

  rig.rm->KillNode(1);
  rig.engine.Run();
  EXPECT_EQ(rig.am_a.lost.size(), 1u);
  EXPECT_EQ(rig.am_b.lost.size(), 0u);
  ASSERT_NE(rig.rm->app_stats(rig.app_a), nullptr);
  EXPECT_EQ(rig.rm->app_stats(rig.app_a)->counters.lost_containers, 1);
  EXPECT_EQ(rig.rm->app_stats(rig.app_b)->counters.lost_containers, 0);
}

TEST(YarnMultiAppTest, PerAppCountersAttributeActivity) {
  MultiRig rig(2, 4, 8192);
  rig.app_a = rig.Register("a", &rig.am_a);
  rig.app_b = rig.Register("b", &rig.am_b);
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app_b, ContainerRequest{});
  rig.engine.Run();
  rig.rm->ReleaseContainer(rig.am_a.allocations[0].first.id);
  rig.engine.Run();
  const TenantStats* a = rig.rm->app_stats(rig.app_a);
  const TenantStats* b = rig.rm->app_stats(rig.app_b);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->counters.requests, 2);
  EXPECT_EQ(a->counters.allocations, 3);  // AM + 2 workers
  EXPECT_EQ(a->counters.releases, 1);
  EXPECT_EQ(b->counters.requests, 1);
  EXPECT_EQ(b->counters.allocations, 2);  // AM + 1 worker
  EXPECT_EQ(b->counters.releases, 0);
  // Waits are recorded per placement and include the allocation delay.
  ASSERT_EQ(a->wait_times_s.size(), 2u);
  EXPECT_GE(a->wait_times_s[0], rig.rm->options().allocation_delay_s);
  // Per-app stats survive unregistration (post-mortem attribution).
  rig.rm->UnregisterApplication(rig.app_a);
  rig.engine.Run();
  EXPECT_NE(rig.rm->app_stats(rig.app_a), nullptr);
  EXPECT_EQ(rig.rm->app_stats(rig.app_a)->counters.requests, 2);
}

TEST(YarnMultiAppTest, CapacitySchedulerServesQueueFurthestBelowGuarantee) {
  RmQueueConfig qa;
  qa.name = "qa";
  qa.guaranteed_share = 0.5;
  RmQueueConfig qb;
  qb.name = "qb";
  qb.guaranteed_share = 0.5;
  MultiRig rig(1, 5, 16384, "capacity", {qa, qb});
  rig.app_a = rig.Register("a", &rig.am_a, "qa");
  rig.app_b = rig.Register("b", &rig.am_b, "qb");
  // qa grabs two fillers: usage qa=3/5, qb=1/5, one core stays free.
  for (int i = 0; i < 2; ++i) {
    rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  }
  rig.engine.Run();
  ASSERT_EQ(rig.am_a.allocations.size(), 2u);
  // Both ask for the last core, qa first. FIFO would serve qa; capacity
  // serves qb, the queue further below its guarantee.
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app_b, ContainerRequest{});
  rig.engine.Run();
  EXPECT_EQ(rig.am_b.allocations.size(), 1u);
  EXPECT_EQ(rig.am_a.allocations.size(), 2u);
  EXPECT_EQ(rig.rm->pending_requests(rig.app_a), 1);
}

TEST(YarnMultiAppTest, CapacityMaxShareCapsAQueue) {
  RmQueueConfig qa;
  qa.name = "qa";
  qa.guaranteed_share = 0.8;
  RmQueueConfig qb;
  qb.name = "qb";
  qb.guaranteed_share = 0.2;
  qb.max_share = 0.2;  // hard cap: 1 of 5 cores
  MultiRig rig(1, 5, 16384, "capacity", {qa, qb});
  rig.app_a = rig.Register("a", &rig.am_a, "qa");
  rig.app_b = rig.Register("b", &rig.am_b, "qb");
  // qb's AM already uses its whole 20% share; its requests must wait even
  // though three cores are free.
  rig.rm->SubmitRequest(rig.app_b, ContainerRequest{});
  rig.engine.RunUntil(rig.engine.Now() + 10.0);
  EXPECT_EQ(rig.am_b.allocations.size(), 0u);
  EXPECT_EQ(rig.rm->pending_requests(rig.app_b), 1);
  // The uncapped queue still gets capacity.
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.engine.Run();
  EXPECT_EQ(rig.am_a.allocations.size(), 1u);
  EXPECT_EQ(rig.rm->pending_requests(rig.app_b), 1);
}

TEST(YarnMultiAppTest, FairSchedulerServesAppWithSmallestDominantShare) {
  MultiRig rig(1, 5, 16384, "fair");
  rig.app_a = rig.Register("a", &rig.am_a);
  rig.app_b = rig.Register("b", &rig.am_b);
  for (int i = 0; i < 2; ++i) {
    rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  }
  rig.engine.Run();
  ASSERT_EQ(rig.am_a.allocations.size(), 2u);
  // Last core, app a asks first. DRF picks app b (dominant share 1/5 vs
  // 3/5).
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app_b, ContainerRequest{});
  rig.engine.Run();
  EXPECT_EQ(rig.am_b.allocations.size(), 1u);
  EXPECT_EQ(rig.rm->pending_requests(rig.app_a), 1);
}

TEST(YarnMultiAppTest, StrictLocalityAndBlacklistSurviveStrategies) {
  for (const char* scheduler : {"capacity", "fair"}) {
    MultiRig rig(3, 2, 4096, scheduler);
    rig.app_a = rig.Register("a", &rig.am_a, "default", 0);
    // Blacklisting nodes 0 and 1 forces node 2 regardless of strategy.
    ContainerRequest request;
    request.blacklist = {0, 1};
    rig.rm->SubmitRequest(rig.app_a, request);
    rig.engine.Run();
    ASSERT_EQ(rig.am_a.allocations.size(), 1u) << scheduler;
    EXPECT_EQ(rig.am_a.allocations[0].first.node, 2) << scheduler;
    // A strict request for a full node waits instead of spilling.
    ContainerRequest strict;
    strict.vcores = 2;
    strict.preferred_node = 2;
    strict.strict_locality = true;
    rig.rm->SubmitRequest(rig.app_a, strict);
    rig.engine.RunUntil(rig.engine.Now() + 10.0);
    EXPECT_EQ(rig.am_a.allocations.size(), 1u) << scheduler;
    EXPECT_EQ(rig.rm->pending_requests(rig.app_a), 1) << scheduler;
  }
}

TEST(YarnMultiAppTest, FairnessIndexReactsToContention) {
  MultiRig rig(1, 3, 8192);
  rig.app_a = rig.Register("a", &rig.am_a);
  // A single tenant is always "fair".
  EXPECT_DOUBLE_EQ(rig.rm->TimeAveragedFairness(), 1.0);
  rig.app_b = rig.Register("b", &rig.am_b);
  // a holds the last core while b starves: instant fairness drops.
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.engine.Run();
  ASSERT_EQ(rig.am_a.allocations.size(), 1u);
  rig.rm->SubmitRequest(rig.app_b, ContainerRequest{});
  rig.engine.RunUntil(rig.engine.Now() + 20.0);
  double instant = rig.rm->InstantFairness();
  EXPECT_LT(instant, 1.0);
  EXPECT_GT(instant, 0.0);
  EXPECT_LT(rig.rm->TimeAveragedFairness(), 1.0);
}

TEST(YarnMultiAppTest, QueueStatsAggregateTheirApplications) {
  MultiRig rig(2, 4, 8192);
  rig.app_a = rig.Register("a", &rig.am_a);
  rig.app_b = rig.Register("b", &rig.am_b);
  rig.rm->SubmitRequest(rig.app_a, ContainerRequest{});
  rig.rm->SubmitRequest(rig.app_b, ContainerRequest{});
  rig.engine.Run();
  const TenantStats* q = rig.rm->queue_stats("default");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->counters.requests, 2);
  EXPECT_EQ(q->counters.allocations, 4);  // 2 AMs + 2 workers
  EXPECT_EQ(q->usage.vcores, 4);
}

TEST(YarnMultiAppTest, UnknownSchedulerNameIsRejected) {
  auto result = MakeRmScheduler("shortest-job-first");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

// -- Container preemption (docs/scheduling-model.md) ------------------------

/// Records each loss with its virtual timestamp (per-round assertions).
class TimestampingAm : public AmCallbacks {
 public:
  explicit TimestampingAm(SimEngine* engine) : engine_(engine) {}
  void OnContainerAllocated(const Container& container,
                            int64_t cookie) override {
    allocations.push_back({container, cookie});
  }
  void OnContainerLost(const Container& container,
                       ContainerLossReason reason) override {
    lost.push_back(container);
    loss_reasons.push_back(reason);
    loss_times.push_back(engine_->Now());
  }
  std::vector<std::pair<Container, int64_t>> allocations;
  std::vector<Container> lost;
  std::vector<ContainerLossReason> loss_reasons;
  std::vector<double> loss_times;

 private:
  SimEngine* engine_;
};

struct PreemptRig {
  SimEngine engine;
  FlowNetwork net{&engine};
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ResourceManager> rm;
  RecordingAm am_a, am_b, am_c;
  ApplicationId app_a = -1, app_b = -1, app_c = -1;

  PreemptRig(int nodes, int cores, double memory_mb,
             const YarnOptions& options,
             const std::vector<RmQueueConfig>& queues) {
    NodeSpec node;
    node.cores = cores;
    node.memory_mb = memory_mb;
    cluster = std::make_unique<Cluster>(
        &engine, &net, ClusterSpec::Uniform(nodes, node, 1000.0));
    rm = std::make_unique<ResourceManager>(cluster.get(), options);
    for (const RmQueueConfig& q : queues) rm->ConfigureQueue(q);
  }

  ApplicationId Register(const std::string& name, AmCallbacks* am,
                         const std::string& queue) {
    auto result =
        rm->RegisterApplication(name, am, 1, 512, kInvalidNode, queue);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : -1;
  }
};

YarnOptions PreemptionOptions(int max_per_round = 2) {
  YarnOptions options;
  options.scheduler = "capacity";
  options.preemption = true;
  options.preemption_grace_s = 1.0;
  options.max_preempt_per_round = max_per_round;
  return options;
}

ContainerRequest TaskRequest(int priority = 0) {
  ContainerRequest r;
  r.vcores = 1;
  r.memory_mb = 1024;
  r.priority = priority;
  return r;
}

TEST(YarnPreemptionTest, RestoresStarvedQueueGuarantee) {
  PreemptRig rig(1, 6, 8192, PreemptionOptions(),
                 {RmQueueConfig{"qa", 0.5, 1.0, 1.0},
                  RmQueueConfig{"qb", 0.5, 1.0, 1.0}});
  rig.app_a = rig.Register("a", &rig.am_a, "qa");
  rig.app_b = rig.Register("b", &rig.am_b, "qb");
  // Queue qa grabs every free core while qb is idle...
  for (int i = 0; i < 4; ++i) {
    rig.rm->SubmitRequest(rig.app_a, TaskRequest());
  }
  rig.engine.Run();
  ASSERT_EQ(rig.am_a.allocations.size(), 4u);
  // ...then qb (guaranteed half the cluster) shows up with demand.
  rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  rig.engine.Run();
  // The grace period expires, two of qa's task containers are preempted,
  // and qb climbs back to its guaranteed share.
  EXPECT_EQ(rig.am_b.allocations.size(), 2u);
  ASSERT_EQ(rig.am_a.lost.size(), 2u);
  for (ContainerLossReason reason : rig.am_a.loss_reasons) {
    EXPECT_EQ(reason, ContainerLossReason::kPreempted);
  }
  EXPECT_EQ(rig.rm->counters().preempted_containers, 2);
  EXPECT_EQ(rig.rm->counters().lost_containers, 0);
  EXPECT_GT(rig.rm->counters().preempted_work_s, 0.0);
  // qa's AM container survived the round.
  EXPECT_TRUE(rig.rm->AmNode(rig.app_a).ok());
  const TenantStats* qa = rig.rm->queue_stats("qa");
  ASSERT_NE(qa, nullptr);
  EXPECT_EQ(qa->counters.preempted_containers, 2);
  // The starvation episode closed and its restoration latency (>= the
  // grace period, since preemption had to step in) was recorded.
  const TenantStats* qb = rig.rm->queue_stats("qb");
  ASSERT_NE(qb, nullptr);
  ASSERT_EQ(qb->restoration_latency_s.size(), 1u);
  EXPECT_GE(qb->restoration_latency_s[0],
            rig.rm->options().preemption_grace_s);
  EXPECT_GT(qb->time_under_guarantee_s, 0.0);
}

TEST(YarnPreemptionTest, NeverTouchesAmContainers) {
  PreemptRig rig(1, 4, 8192, PreemptionOptions(),
                 {RmQueueConfig{"qa", 0.25, 1.0, 1.0},
                  RmQueueConfig{"qb", 0.75, 1.0, 1.0}});
  // qa holds over its guarantee purely with AM containers (2/4 cores).
  rig.app_a = rig.Register("a", &rig.am_a, "qa");
  rig.app_c = rig.Register("c", &rig.am_c, "qa");
  rig.app_b = rig.Register("b", &rig.am_b, "qb");
  // qb wants two more cores but only one is free: it stays starved past
  // the grace period — and the RM must NOT kill anyone's AM for it.
  rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  rig.engine.Run();
  EXPECT_EQ(rig.am_b.allocations.size(), 1u);
  EXPECT_EQ(rig.rm->counters().preempted_containers, 0);
  EXPECT_EQ(rig.rm->counters().app_failures, 0);
  EXPECT_TRUE(rig.am_a.lost.empty());
  EXPECT_TRUE(rig.am_c.lost.empty());
  EXPECT_TRUE(rig.rm->AmNode(rig.app_a).ok());
  EXPECT_TRUE(rig.rm->AmNode(rig.app_c).ok());
  // qb's unmet demand is still pending (no victims existed).
  const TenantStats* qb = rig.rm->queue_stats("qb");
  ASSERT_NE(qb, nullptr);
  EXPECT_EQ(qb->pending_requests, 1);
}

TEST(YarnPreemptionTest, TakesLowestPriorityContainersFirst) {
  PreemptRig rig(1, 6, 8192, PreemptionOptions(),
                 {RmQueueConfig{"qa", 0.5, 1.0, 1.0},
                  RmQueueConfig{"qb", 0.5, 1.0, 1.0}});
  rig.app_a = rig.Register("a", &rig.am_a, "qa");
  rig.app_b = rig.Register("b", &rig.am_b, "qb");
  // The low-priority containers are OLDER: if selection used age alone
  // it would kill the high-priority pair instead.
  rig.rm->SubmitRequest(rig.app_a, TaskRequest(/*priority=*/1));
  rig.rm->SubmitRequest(rig.app_a, TaskRequest(/*priority=*/1));
  rig.engine.Run();
  rig.rm->SubmitRequest(rig.app_a, TaskRequest(/*priority=*/5));
  rig.rm->SubmitRequest(rig.app_a, TaskRequest(/*priority=*/5));
  rig.engine.Run();
  ASSERT_EQ(rig.am_a.allocations.size(), 4u);
  rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  rig.engine.Run();
  ASSERT_EQ(rig.am_a.lost.size(), 2u);
  for (const Container& victim : rig.am_a.lost) {
    EXPECT_EQ(victim.priority, 1);
  }
  EXPECT_EQ(rig.am_b.allocations.size(), 2u);
}

TEST(YarnPreemptionTest, HonoursPerRoundBound) {
  PreemptRig rig(1, 8, 16384, PreemptionOptions(/*max_per_round=*/1),
                 {RmQueueConfig{"qa", 0.25, 1.0, 1.0},
                  RmQueueConfig{"qb", 0.5, 1.0, 1.0}});
  TimestampingAm am_a(&rig.engine);
  rig.app_a = rig.Register("a", &am_a, "qa");
  rig.app_b = rig.Register("b", &rig.am_b, "qb");
  for (int i = 0; i < 6; ++i) {
    rig.rm->SubmitRequest(rig.app_a, TaskRequest());
  }
  rig.engine.Run();
  ASSERT_EQ(am_a.allocations.size(), 6u);
  for (int i = 0; i < 4; ++i) {
    rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  }
  rig.engine.Run();
  // qb's deficit is 3 cores (guarantee 4, AM holds 1): with one kill per
  // round it takes three separate rounds to restore the guarantee.
  EXPECT_EQ(rig.rm->counters().preempted_containers, 3);
  ASSERT_EQ(am_a.loss_times.size(), 3u);
  EXPECT_LT(am_a.loss_times[0], am_a.loss_times[1]);
  EXPECT_LT(am_a.loss_times[1], am_a.loss_times[2]);
  EXPECT_EQ(rig.am_b.allocations.size(), 3u);
  // At its guarantee, qb stops reclaiming even though demand remains.
  const TenantStats* qb = rig.rm->queue_stats("qb");
  ASSERT_NE(qb, nullptr);
  EXPECT_EQ(qb->pending_requests, 1);
  EXPECT_EQ(qb->usage.vcores, 4);
}

TEST(YarnPreemptionTest, DisabledPreemptionStillRecordsStarvation) {
  YarnOptions options = PreemptionOptions();
  options.preemption = false;
  PreemptRig rig(1, 6, 8192, options,
                 {RmQueueConfig{"qa", 0.5, 1.0, 1.0},
                  RmQueueConfig{"qb", 0.5, 1.0, 1.0}});
  rig.app_a = rig.Register("a", &rig.am_a, "qa");
  rig.app_b = rig.Register("b", &rig.am_b, "qb");
  for (int i = 0; i < 4; ++i) {
    rig.rm->SubmitRequest(rig.app_a, TaskRequest());
  }
  rig.engine.Run();
  rig.rm->SubmitRequest(rig.app_b, TaskRequest());
  rig.engine.Run();
  // Nothing was killed...
  EXPECT_EQ(rig.rm->counters().preempted_containers, 0);
  EXPECT_TRUE(rig.am_a.lost.empty());
  // ...but once qa releases a container, qb's episode closes and the
  // restoration latency is recorded (the preemption-off baseline the
  // bench compares against).
  rig.rm->ReleaseContainer(rig.am_a.allocations[0].first.id);
  rig.engine.Run();
  EXPECT_EQ(rig.am_b.allocations.size(), 1u);
  const TenantStats* qb = rig.rm->queue_stats("qb");
  ASSERT_NE(qb, nullptr);
  ASSERT_EQ(qb->restoration_latency_s.size(), 1u);
  EXPECT_GT(qb->restoration_latency_s[0], 0.0);
}

TEST(YarnPreemptionTest, VictimSelectionOrdersAndExemptions) {
  FlatHashMap<ApplicationId, TenantStats> app_stats;
  FlatHashMap<std::string, TenantStats> queue_stats;
  std::map<std::string, RmQueueConfig> queue_configs;
  queue_configs["hog"] = RmQueueConfig{"hog", 0.2, 1.0, 1.0};
  queue_configs["mild"] = RmQueueConfig{"mild", 0.3, 1.0, 1.0};
  queue_configs["starved"] = RmQueueConfig{"starved", 0.5, 1.0, 1.0};
  queue_stats["hog"].usage = {6, 6144.0};      // share 0.6, surplus 0.4
  queue_stats["mild"].usage = {3, 3072.0};     // exactly at guarantee
  queue_stats["starved"].usage = {1, 1024.0};  // far below guarantee
  RmTenancyView view;
  view.total_vcores = 10;
  view.total_memory_mb = 10240.0;
  view.app_stats = &app_stats;
  view.queue_stats = &queue_stats;
  view.queue_configs = &queue_configs;

  std::string hog = "hog", mild = "mild", starved = "starved";
  auto cand = [](ContainerId id, const std::string* queue, bool is_am,
                 int priority, double allocated_at) {
    PreemptionCandidate c;
    c.container.id = id;
    c.container.vcores = 1;
    c.container.memory_mb = 1024.0;
    c.container.is_am = is_am;
    c.container.priority = priority;
    c.container.allocated_at = allocated_at;
    c.queue = queue;
    return c;
  };
  std::vector<PreemptionCandidate> candidates = {
      cand(1, &hog, /*is_am=*/true, 0, 0.0),
      cand(2, &hog, false, /*priority=*/5, /*allocated_at=*/10.0),
      cand(3, &hog, false, /*priority=*/1, /*allocated_at=*/5.0),
      cand(4, &hog, false, /*priority=*/1, /*allocated_at=*/8.0),
      cand(5, &mild, false, /*priority=*/0, /*allocated_at=*/1.0),
      cand(6, &starved, false, /*priority=*/0, /*allocated_at=*/1.0),
  };

  // Lowest priority first within the donor, youngest breaking the tie.
  ResourceUsage needed{2, 2048.0};
  std::vector<ContainerId> victims =
      SelectPreemptionVictims(candidates, view, starved, needed, 10);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 4);
  EXPECT_EQ(victims[1], 3);

  // The per-round bound truncates the list.
  victims = SelectPreemptionVictims(candidates, view, starved, needed, 1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 4);

  // Even unbounded demand never claims AM containers, the starved
  // queue's own containers, or donors at/below their guarantee.
  victims = SelectPreemptionVictims(candidates, view, starved,
                                    ResourceUsage{100, 102400.0}, 100);
  EXPECT_EQ(victims, (std::vector<ContainerId>{4, 3, 2}));
}

TEST(YarnPreemptionTest, LossReasonToString) {
  EXPECT_STREQ(ToString(ContainerLossReason::kPreempted), "preempted");
}

}  // namespace
}  // namespace hiway
